"""Query evaluation: the certain-answer lower bound ``||Q||_*`` (Section 5).

The paper adopts a calculus-flavoured query shape (it uses QUEL as the
concrete syntax): a query has *range variables* bound to relations, a
*target list* of ``variable.attribute`` terms, and a *where* clause built
from relational expressions ``t.A θ m.B`` / ``t.A θ k`` with AND/OR/NOT.
Evaluation of the lower bound is tuple-at-a-time:

1. form all combinations of rows for the range variables (the Cartesian
   product of the ranges);
2. evaluate the where clause in the three-valued logic of Table III —
   any comparison touching a null yields ``ni``;
3. keep a combination only when the clause evaluates to **TRUE**, and emit
   the target-list values.

This module defines the predicate AST (:class:`Comparison`, :class:`And`,
:class:`Or`, :class:`Not`, plus constants), the :class:`Query` object, and
:func:`evaluate_lower_bound`.  The QUEL front end (:mod:`repro.quel`)
parses concrete syntax into these objects; the possible-worlds evaluator
(:mod:`repro.worlds`) reuses the same AST to compute certain/possible
answers by completion enumeration, which is how we validate that the
lower-bound strategy is sound (and show what it misses under the
"unknown" interpretation — experiment E4).
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from .errors import QuelSemanticError
from .relation import Relation, RelationSchema
from .threevalued import FALSE, NI_TRUTH, TRUE, TruthValue, compare, truth_of
from .tuples import XTuple
from .xrelation import XRelation


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------

class Term:
    """A term of a relational expression: an attribute reference or a constant."""

    def value(self, binding: Mapping[str, XTuple]) -> Any:
        raise NotImplementedError

    def references(self) -> Tuple[str, ...]:
        """The range variables this term mentions."""
        return ()


class AttributeRef(Term):
    """``variable.attribute`` — e.g. ``e.TEL#`` in the paper's Figure 1."""

    __slots__ = ("variable", "attribute")

    def __init__(self, variable: str, attribute: str):
        self.variable = variable
        self.attribute = attribute

    def value(self, binding: Mapping[str, XTuple]) -> Any:
        try:
            row = binding[self.variable]
        except KeyError:
            raise QuelSemanticError(f"unbound range variable {self.variable!r}") from None
        return row[self.attribute]

    def references(self) -> Tuple[str, ...]:
        return (self.variable,)

    def __repr__(self) -> str:
        return f"{self.variable}.{self.attribute}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AttributeRef)
            and other.variable == self.variable
            and other.attribute == self.attribute
        )

    def __hash__(self) -> int:
        return hash((self.variable, self.attribute))


class Constant(Term):
    """A literal constant appearing in a query."""

    __slots__ = ("literal",)

    def __init__(self, literal: Any):
        self.literal = literal

    def value(self, binding: Mapping[str, XTuple]) -> Any:
        return self.literal

    def __repr__(self) -> str:
        return repr(self.literal)

    def __eq__(self, other) -> bool:
        return isinstance(other, Constant) and other.literal == self.literal

    def __hash__(self) -> int:
        return hash(("Constant", self.literal))


class Parameter(Term):
    """A named ``$parameter`` placeholder awaiting a per-execution value.

    Prepared statements analyse and plan a query *template* once;
    :func:`substitute_parameters` turns the template into an executable
    query by replacing each placeholder with a :class:`Constant`.
    Evaluating an unbound placeholder is an error.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def value(self, binding: Mapping[str, XTuple]) -> Any:
        raise QuelSemanticError(
            f"unbound parameter ${self.name}; supply params={{...}} at execution"
        )

    def __repr__(self) -> str:
        return f"${self.name}"

    def __eq__(self, other) -> bool:
        return isinstance(other, Parameter) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Parameter", self.name))


# ---------------------------------------------------------------------------
# Predicates (the where clause)
# ---------------------------------------------------------------------------

class Predicate:
    """Base class of where-clause nodes, evaluated in three-valued logic."""

    def evaluate(self, binding: Mapping[str, XTuple]) -> TruthValue:
        raise NotImplementedError

    def comparisons(self) -> List["Comparison"]:
        """All comparison leaves (used by the tautology analyser)."""
        return []

    def references(self) -> Tuple[str, ...]:
        return ()

    # Composition helpers so predicates read naturally at call sites.
    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class Comparison(Predicate):
    """A relational expression ``left θ right`` (Section 5)."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left: Union[Term, Any], op: str, right: Union[Term, Any]):
        self.left = left if isinstance(left, Term) else Constant(left)
        self.op = op
        self.right = right if isinstance(right, Term) else Constant(right)

    def evaluate(self, binding: Mapping[str, XTuple]) -> TruthValue:
        return compare(self.left.value(binding), self.op, self.right.value(binding))

    def comparisons(self) -> List["Comparison"]:
        return [self]

    def references(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(self.left.references() + self.right.references()))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Predicate):
    """Conjunction, per the Table III AND table."""

    __slots__ = ("operands",)

    def __init__(self, *operands: Predicate):
        self.operands = tuple(operands)

    def evaluate(self, binding: Mapping[str, XTuple]) -> TruthValue:
        result = TRUE
        for operand in self.operands:
            result = result & operand.evaluate(binding)
            if result.is_false():
                return FALSE
        return result

    def comparisons(self) -> List[Comparison]:
        return [c for operand in self.operands for c in operand.comparisons()]

    def references(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for operand in self.operands:
            for v in operand.references():
                seen[v] = None
        return tuple(seen)

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(o) for o in self.operands) + ")"


class Or(Predicate):
    """Disjunction, per the Table III OR table."""

    __slots__ = ("operands",)

    def __init__(self, *operands: Predicate):
        self.operands = tuple(operands)

    def evaluate(self, binding: Mapping[str, XTuple]) -> TruthValue:
        result = FALSE
        for operand in self.operands:
            result = result | operand.evaluate(binding)
            if result.is_true():
                return TRUE
        return result

    def comparisons(self) -> List[Comparison]:
        return [c for operand in self.operands for c in operand.comparisons()]

    def references(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for operand in self.operands:
            for v in operand.references():
                seen[v] = None
        return tuple(seen)

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(o) for o in self.operands) + ")"


class Not(Predicate):
    """Negation; fixes ``ni`` (Table III)."""

    __slots__ = ("operand",)

    def __init__(self, operand: Predicate):
        self.operand = operand

    def evaluate(self, binding: Mapping[str, XTuple]) -> TruthValue:
        return self.operand.evaluate(binding).not_()

    def comparisons(self) -> List[Comparison]:
        return self.operand.comparisons()

    def references(self) -> Tuple[str, ...]:
        return self.operand.references()

    def __repr__(self) -> str:
        return f"¬{self.operand!r}"


class TruthConstant(Predicate):
    """A constant truth value (useful for degenerate queries and tests)."""

    __slots__ = ("truth",)

    def __init__(self, truth: TruthValue):
        self.truth = truth

    def evaluate(self, binding: Mapping[str, XTuple]) -> TruthValue:
        return self.truth

    def __repr__(self) -> str:
        return repr(self.truth)


ALWAYS_TRUE = TruthConstant(TRUE)
ALWAYS_FALSE = TruthConstant(FALSE)


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

class Query:
    """A calculus-style query: ranges, target list, where clause.

    Parameters
    ----------
    ranges:
        Mapping from range-variable name to the relation it ranges over
        (a :class:`Relation` or :class:`XRelation`).
    target:
        The projection list, as ``(output_name, AttributeRef)`` pairs or
        bare :class:`AttributeRef` objects (output name defaults to
        ``variable_attribute``).
    where:
        The qualification predicate; defaults to always-TRUE.
    name:
        Optional label, used as the result relation's name.
    """

    def __init__(
        self,
        ranges: Mapping[str, Union[Relation, XRelation]],
        target: Sequence[Union[AttributeRef, Tuple[str, AttributeRef]]],
        where: Optional[Predicate] = None,
        name: str = "Q",
    ):
        if not ranges:
            raise QuelSemanticError("a query needs at least one range variable")
        self.name = name
        self.ranges: Dict[str, Relation] = {}
        for variable, relation in ranges.items():
            rep = relation.representation if isinstance(relation, XRelation) else relation
            self.ranges[variable] = rep
        self.target: List[Tuple[str, AttributeRef]] = []
        for item in target:
            if isinstance(item, AttributeRef):
                self.target.append((f"{item.variable}_{item.attribute}", item))
            else:
                output_name, ref = item
                self.target.append((output_name, ref))
        if not self.target:
            raise QuelSemanticError("a query needs a non-empty target list")
        self.where: Predicate = where if where is not None else ALWAYS_TRUE
        self._validate()

    def _validate(self) -> None:
        seen_outputs: Dict[str, None] = {}
        for output_name, _ in self.target:
            if output_name in seen_outputs:
                raise QuelSemanticError(
                    f"duplicate output column {output_name!r} in the target list; "
                    f"give each target a distinct name"
                )
            seen_outputs[output_name] = None
        for _, ref in self.target:
            if ref.variable not in self.ranges:
                raise QuelSemanticError(
                    f"target references unknown range variable {ref.variable!r}"
                )
            if ref.attribute not in self.ranges[ref.variable].schema:
                raise QuelSemanticError(
                    f"target references unknown attribute "
                    f"{ref.variable}.{ref.attribute}"
                )
        for comparison in self.where.comparisons():
            for term in (comparison.left, comparison.right):
                if isinstance(term, AttributeRef):
                    if term.variable not in self.ranges:
                        raise QuelSemanticError(
                            f"where clause references unknown range variable {term.variable!r}"
                        )
                    if term.attribute not in self.ranges[term.variable].schema:
                        raise QuelSemanticError(
                            f"where clause references unknown attribute "
                            f"{term.variable}.{term.attribute}"
                        )

    # -- result schema -------------------------------------------------------
    def output_attributes(self) -> Tuple[str, ...]:
        return tuple(output_name for output_name, _ in self.target)

    def output_schema(self) -> RelationSchema:
        return RelationSchema(self.output_attributes(), name=self.name)

    # -- binding enumeration -----------------------------------------------------
    def bindings(self) -> Iterable[Dict[str, XTuple]]:
        """All combinations of rows for the range variables.

        Rows that are the *null tuple* are skipped: a tuple binding no
        attribute carries no information, Definition 4.6 drops it from
        every minimal representation, and the paper uses a relation and
        its minimal form interchangeably — so a binding drawn from it
        must not contribute to any answer.  Skipping it here makes the
        tuple-at-a-time evaluations representation-invariant: evaluating
        over ``R`` and over ``min(R)`` yields information-wise equal
        answers, which is exactly the planner's differential contract.
        """
        variables = list(self.ranges)
        row_lists = [
            [t for t in self.ranges[v].tuples() if not t.is_null_tuple()]
            for v in variables
        ]
        for combo in iter_product(*row_lists):
            yield dict(zip(variables, combo))

    def __repr__(self) -> str:
        return (
            f"Query({self.name!r}, ranges={list(self.ranges)}, "
            f"target={[n for n, _ in self.target]}, where={self.where!r})"
        )


def evaluate_lower_bound(query: Query, minimize: bool = True) -> XRelation:
    """Compute the certain-answer lower bound ``||Q||_*`` of Section 5.

    A binding contributes to the answer exactly when the where clause
    evaluates to TRUE; bindings evaluating to FALSE or ``ni`` are
    discarded.  Output rows may contain nulls if the target list projects
    attributes on which a qualifying row is null (that is permitted: the
    paper's answers are themselves relations with nulls).
    """
    out = Relation(query.output_schema(), validate=False)
    for binding in query.bindings():
        if query.where.evaluate(binding).is_true():
            out.add(XTuple(
                (output_name, ref.value(binding))
                for output_name, ref in query.target
            ))
    result = XRelation(out)
    return result if minimize else XRelation(out)


def collect_parameters(predicate: Optional[Predicate]) -> Tuple[str, ...]:
    """The distinct parameter names a predicate mentions, in first-use order."""
    if predicate is None:
        return ()
    seen: Dict[str, None] = {}
    for comparison in predicate.comparisons():
        for term in (comparison.left, comparison.right):
            if isinstance(term, Parameter):
                seen[term.name] = None
    return tuple(seen)


def substitute_parameters(
    predicate: Predicate, params: Mapping[str, Any]
) -> Predicate:
    """A copy of *predicate* with every :class:`Parameter` bound to a constant.

    Nodes containing no placeholders are shared, not copied, so repeated
    substitution of a mostly-parameter-free template is cheap.  A
    placeholder missing from *params* raises :class:`QuelSemanticError`.
    """
    if isinstance(predicate, Comparison):
        left, right = predicate.left, predicate.right
        bound_left = _bind_term(left, params)
        bound_right = _bind_term(right, params)
        if bound_left is left and bound_right is right:
            return predicate
        return Comparison(bound_left, predicate.op, bound_right)
    if isinstance(predicate, And):
        operands = [substitute_parameters(o, params) for o in predicate.operands]
        if all(n is o for n, o in zip(operands, predicate.operands)):
            return predicate
        return And(*operands)
    if isinstance(predicate, Or):
        operands = [substitute_parameters(o, params) for o in predicate.operands]
        if all(n is o for n, o in zip(operands, predicate.operands)):
            return predicate
        return Or(*operands)
    if isinstance(predicate, Not):
        operand = substitute_parameters(predicate.operand, params)
        return predicate if operand is predicate.operand else Not(operand)
    return predicate


def bind_parameter(params: Mapping[str, Any], name: str) -> Any:
    """The value bound to ``$name``, or a uniform missing-value error.

    The one lookup-or-raise implementation shared by predicate
    substitution and the session's compiled assignment/probe resolvers,
    so the binding semantics (and the error message) cannot drift.
    """
    if name not in params:
        raise QuelSemanticError(
            f"missing value for parameter ${name} "
            f"(supplied: {sorted(params) if params else 'none'})"
        )
    return params[name]


def _bind_term(term: Term, params: Mapping[str, Any]) -> Term:
    if isinstance(term, Parameter):
        return Constant(bind_parameter(params, term.name))
    return term


def evaluate_truth_partition(query: Query) -> Dict[str, List[Dict[str, XTuple]]]:
    """Partition the bindings of a query by the truth value of its where clause.

    Returns ``{"TRUE": [...], "FALSE": [...], "ni": [...]}``.  Used by the
    Codd-comparison experiments: the TRUE bucket is the lower bound, the
    ``ni`` bucket is what Codd's MAYBE-query would add.
    """
    buckets: Dict[str, List[Dict[str, XTuple]]] = {"TRUE": [], "FALSE": [], "ni": []}
    for binding in query.bindings():
        truth = query.where.evaluate(binding)
        buckets[truth.name].append(binding)
    return buckets
