"""Tuples (X-values) and the information ordering of Section 3.

A tuple in the paper is an *X-value*: an assignment of values, drawn from
extended domains, to a finite set of attributes ``X``.  The crucial
convention (Section 3) is that a tuple is regarded as having the value
``ni`` on every attribute *outside* its own attribute set, so that tuples
over different attribute sets remain comparable.  :class:`XTuple`
implements exactly this: it stores only the attribute/value pairs it was
given, but ``t[A]`` returns ``ni`` for any unknown attribute ``A``.

On top of X-values the paper defines:

* the **more informative** quasi-order ``r ≥ t`` (Definition 3.1),
* information-wise **equivalence** ``r ≅ t`` (``r ≥ t`` and ``t ≥ r``),
* the **meet** ``r1 ∧ r2`` — always defined, the most informative tuple
  less informative than both,
* **joinability** and the **join** ``r1 ∨ r2`` — defined only when the
  two tuples agree on every attribute where both are non-null; the least
  informative tuple more informative than both.

Modulo equivalence these make the universe of tuples ``U*`` a meet
semilattice (footnote 5).  All of these are implemented here as module
functions as well as methods, so they can be used both on ad-hoc tuples
and from the relation layer.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from .errors import NotJoinableError, SchemaError
from .nulls import NI, coerce_null, is_ni


class XTuple:
    """An immutable X-value: a partial assignment of attributes to values.

    Parameters
    ----------
    assignment:
        A mapping from attribute names to values, or an iterable of
        ``(attribute, value)`` pairs.  ``None`` values are normalised to
        the no-information null :data:`~repro.core.nulls.NI`.

    Notes
    -----
    * Attributes explicitly bound to ``ni`` are *dropped* from the stored
      assignment: by the Section 3 convention a tuple whose ``A``-value is
      ``ni`` is information-wise indistinguishable from the same tuple with
      no ``A`` attribute at all.  This gives each equivalence class of
      tuples a canonical stored form, so Python equality of
      :class:`XTuple` objects coincides with the paper's ``≅`` relation.
    * The object is hashable and usable in sets/dicts, which is how
      relations store their rows.
    """

    __slots__ = ("_items", "_lookup", "_hash")

    def __init__(self, assignment: Optional[Mapping[str, Any] | Iterable[Tuple[str, Any]]] = None, **kwargs: Any):
        pairs: Dict[str, Any] = {}
        if assignment is not None:
            items = assignment.items() if isinstance(assignment, Mapping) else assignment
            for attribute, value in items:
                self._check_attribute_name(attribute)
                pairs[attribute] = coerce_null(value)
        for attribute, value in kwargs.items():
            self._check_attribute_name(attribute)
            pairs[attribute] = coerce_null(value)
        # Canonical form: drop explicit ni bindings, sort by attribute name.
        nonnull_items = tuple(
            (attribute, value)
            for attribute, value in sorted(pairs.items())
            if not is_ni(value)
        )
        self._items: Tuple[Tuple[str, Any], ...] = nonnull_items
        self._lookup: Dict[str, Any] = dict(nonnull_items)
        self._hash = hash(nonnull_items)

    @staticmethod
    def _check_attribute_name(attribute: Any) -> None:
        if not isinstance(attribute, str) or not attribute:
            raise SchemaError(f"attribute names must be non-empty strings, got {attribute!r}")

    # -- pickling ------------------------------------------------------------
    def __reduce__(self):
        # The stored items are already canonical (sorted, ni-free), so a
        # pickled tuple round-trips through :meth:`_restore` without the
        # validating/normalising ``__init__`` — the payload is one tuple
        # of pairs, and worker-side reconstruction is three slot writes.
        # This is what keeps shipping blocks to exchange workers cheap.
        return (XTuple._restore, (self._items,))

    @classmethod
    def _restore(cls, items: Tuple[Tuple[str, Any], ...]) -> "XTuple":
        self = cls.__new__(cls)
        self._items = items
        self._lookup = dict(items)
        self._hash = hash(items)
        return self

    # -- construction helpers ---------------------------------------------
    @classmethod
    def from_values(cls, attributes: Sequence[str], values: Sequence[Any]) -> "XTuple":
        """Build a tuple from parallel sequences of attributes and values."""
        if len(attributes) != len(values):
            raise SchemaError(
                f"{len(attributes)} attributes but {len(values)} values"
            )
        return cls(zip(attributes, values))

    @classmethod
    def null_tuple(cls) -> "XTuple":
        """The (canonical) null tuple: all values are ``ni``."""
        return cls()

    # -- basic accessors ----------------------------------------------------
    @property
    def attributes(self) -> Tuple[str, ...]:
        """The attributes on which this tuple is non-null, sorted."""
        return tuple(attribute for attribute, _ in self._items)

    def __getitem__(self, attribute: str) -> Any:
        """Return the value on *attribute*; ``ni`` if the tuple does not bind it."""
        return self._lookup.get(attribute, NI)

    def get(self, attribute: str, default: Any = NI) -> Any:
        return self._lookup.get(attribute, default)

    def items(self) -> Tuple[Tuple[str, Any], ...]:
        """The non-null ``(attribute, value)`` pairs, sorted by attribute."""
        return self._items

    def as_dict(self) -> Dict[str, Any]:
        """A fresh dict of the non-null bindings."""
        return dict(self._items)

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._lookup

    # -- classification -----------------------------------------------------
    def is_null_tuple(self) -> bool:
        """True when every value is ``ni`` (Section 3: a *null tuple*)."""
        return not self._items

    def is_total_on(self, attributes: Iterable[str]) -> bool:
        """True when this tuple is *X-total*: non-null on every attribute in X."""
        return all(attribute in self._lookup for attribute in attributes)

    def is_total(self, attributes: Iterable[str]) -> bool:
        """Alias of :meth:`is_total_on` for readability at call sites."""
        return self.is_total_on(attributes)

    # -- projection / padding ------------------------------------------------
    def project(self, attributes: Iterable[str]) -> "XTuple":
        """The restriction ``r[X]`` of this tuple to the attributes in *X*.

        Attributes of *X* on which the tuple is null simply disappear from
        the canonical form, as the convention dictates.
        """
        wanted = set(attributes)
        return XTuple(
            (attribute, value) for attribute, value in self._items if attribute in wanted
        )

    def drop(self, attributes: Iterable[str]) -> "XTuple":
        """The restriction of this tuple to attributes *not* in the given set."""
        unwanted = set(attributes)
        return XTuple(
            (attribute, value) for attribute, value in self._items if attribute not in unwanted
        )

    def extend(self, other: Mapping[str, Any] | "XTuple") -> "XTuple":
        """Return a new tuple with *other*'s bindings added.

        Overlapping attributes must agree (otherwise the result would not
        be more informative than both inputs); use :func:`tuple_join` when
        you want the paper's joinability check and error.
        """
        other_items = other.items() if isinstance(other, XTuple) else other.items()
        merged = dict(self._items)
        for attribute, value in other_items:
            value = coerce_null(value)
            if is_ni(value):
                continue
            if attribute in merged and merged[attribute] != value:
                raise NotJoinableError(
                    f"conflicting values for {attribute}: {merged[attribute]!r} vs {value!r}"
                )
            merged[attribute] = value
        return XTuple(merged)

    def rename(self, mapping: Mapping[str, str]) -> "XTuple":
        """Return a copy with attributes renamed according to *mapping*."""
        return XTuple(
            (mapping.get(attribute, attribute), value) for attribute, value in self._items
        )

    # -- the information ordering -------------------------------------------
    def more_informative_than(self, other: "XTuple") -> bool:
        """Definition 3.1: ``self ≥ other``.

        ``self`` must match ``other`` on every attribute where ``other`` is
        non-null.
        """
        for attribute, value in other._items:
            if self._lookup.get(attribute, NI) != value:
                return False
        return True

    def less_informative_than(self, other: "XTuple") -> bool:
        """``self ≤ other`` — the converse of :meth:`more_informative_than`."""
        return other.more_informative_than(self)

    def equivalent_to(self, other: "XTuple") -> bool:
        """Information-wise equivalence ``self ≅ other``.

        Because the stored form is canonical, this coincides with ``==``.
        """
        return self._items == other._items

    # -- meet / join ----------------------------------------------------------
    def joinable_with(self, other: "XTuple") -> bool:
        """True when the two tuples agree wherever both are non-null (Sec. 3)."""
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        for attribute, value in small._items:
            other_value = large._lookup.get(attribute)
            if other_value is not None and other_value != value:
                return False
        return True

    def meet(self, other: "XTuple") -> "XTuple":
        """The meet ``self ∧ other``: keep exactly the agreeing bindings."""
        if len(self) > len(other):
            self, other = other, self
        return XTuple(
            (attribute, value)
            for attribute, value in self._items
            if other._lookup.get(attribute) == value
        )

    def join(self, other: "XTuple") -> "XTuple":
        """The join ``self ∨ other``; raises :class:`NotJoinableError` otherwise."""
        merged = dict(self._items)
        for attribute, value in other._items:
            existing = merged.get(attribute)
            if existing is not None and existing != value:
                raise NotJoinableError(
                    f"tuples disagree on {attribute}: {existing!r} vs {value!r}"
                )
            merged[attribute] = value
        return XTuple(merged)

    # -- dunder plumbing -------------------------------------------------------
    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, XTuple):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    # Ordering operators follow the *information* ordering, not any value
    # ordering: r1 <= r2 means "r1 is less informative than r2".
    def __le__(self, other: "XTuple") -> bool:
        if not isinstance(other, XTuple):
            return NotImplemented
        return other.more_informative_than(self)

    def __ge__(self, other: "XTuple") -> bool:
        if not isinstance(other, XTuple):
            return NotImplemented
        return self.more_informative_than(other)

    def __lt__(self, other: "XTuple") -> bool:
        if not isinstance(other, XTuple):
            return NotImplemented
        return self <= other and self._items != other._items

    def __gt__(self, other: "XTuple") -> bool:
        if not isinstance(other, XTuple):
            return NotImplemented
        return self >= other and self._items != other._items

    def __repr__(self) -> str:
        inner = ", ".join(f"{attribute}={value!r}" for attribute, value in self._items)
        return f"XTuple({inner})"

    def format_row(self, attributes: Sequence[str]) -> str:
        """Render this tuple as a table row over the given attribute order."""
        return "  ".join(str(self[attribute]) for attribute in attributes)


# ---------------------------------------------------------------------------
# Module-level functional forms (convenient for map/filter pipelines and for
# property-based tests that quantify over pairs of tuples).
# ---------------------------------------------------------------------------

def more_informative(r: XTuple, t: XTuple) -> bool:
    """Definition 3.1 as a function: ``r ≥ t``."""
    return r.more_informative_than(t)


def equivalent(r: XTuple, t: XTuple) -> bool:
    """Information-wise equivalence of two tuples."""
    return r.equivalent_to(t)


def joinable(r: XTuple, t: XTuple) -> bool:
    """True when the tuple join ``r ∨ t`` exists."""
    return r.joinable_with(t)


def tuple_meet(r: XTuple, t: XTuple) -> XTuple:
    """The meet ``r ∧ t`` of two tuples."""
    return r.meet(t)


def tuple_join(r: XTuple, t: XTuple) -> XTuple:
    """The join ``r ∨ t`` of two joinable tuples."""
    return r.join(t)


def try_join(r: XTuple, t: XTuple) -> Optional[XTuple]:
    """The join ``r ∨ t`` or ``None`` when the tuples are not joinable."""
    if not r.joinable_with(t):
        return None
    return r.join(t)


#: The canonical null tuple (all attributes ``ni``).
NULL_TUPLE = XTuple()
