"""Core of the reproduction: the paper's primary contribution.

This package implements Sections 3–7 of Zaniolo's *Database Relations with
Null Values*: the no-information null, the tuple information ordering,
relations and x-relations, the generalised set operations and their
lattice, the three-valued query-evaluation discipline, and the complete
generalised relational algebra.
"""

from .nulls import NI, MarkedNull, NonexistentNull, UnknownNull, is_ni, is_nonnull, is_null
from .domains import (
    ANY,
    AnyDomain,
    Domain,
    EnumeratedDomain,
    IntegerRangeDomain,
    TypedDomain,
    active_domain,
)
from .tuples import (
    NULL_TUPLE,
    XTuple,
    equivalent,
    joinable,
    more_informative,
    try_join,
    tuple_join,
    tuple_meet,
)
from .relation import Relation, RelationSchema
from .xrelation import XRelation, as_xrelation
from .setops import difference, union, x_intersection
from .lattice import (
    AttributeUniverse,
    bottom,
    boolean_sublattice_elements,
    check_difference_laws,
    check_distributivity,
    check_lattice_laws,
    complement_counterexample,
    has_boolean_complement,
    pseudo_complement,
    top,
)
from .threevalued import (
    FALSE,
    NI_TRUTH,
    TRUE,
    TRUTH_VALUES,
    TruthValue,
    compare,
    conjunction,
    disjunction,
    truth_of,
)
from . import algebra
from .algebra import (
    divide,
    divide_by_images,
    image_set,
    join_on,
    product,
    project,
    rename,
    select_attributes,
    select_constant,
    select_predicate,
    theta_join,
    union_join,
)
from .query import (
    ALWAYS_FALSE,
    ALWAYS_TRUE,
    And,
    AttributeRef,
    Comparison,
    Constant,
    Not,
    Or,
    Parameter,
    Predicate,
    Query,
    Term,
    TruthConstant,
    collect_parameters,
    evaluate_lower_bound,
    evaluate_truth_partition,
    substitute_parameters,
)
from .errors import (
    AlgebraError,
    AttributeNotFound,
    ConstraintViolation,
    DomainError,
    KeyViolation,
    NotJoinableError,
    NotNullViolation,
    QuelError,
    QuelLexError,
    QuelParseError,
    QuelSemanticError,
    ReferentialViolation,
    ReproError,
    SchemaError,
    SessionClosedError,
    StaleResultError,
    StorageError,
    TautologyError,
    UnionCompatibilityError,
    WalError,
    WalWarning,
)

__all__ = [
    # nulls
    "NI", "MarkedNull", "NonexistentNull", "UnknownNull", "is_ni", "is_nonnull", "is_null",
    # domains
    "ANY", "AnyDomain", "Domain", "EnumeratedDomain", "IntegerRangeDomain", "TypedDomain", "active_domain",
    # tuples
    "NULL_TUPLE", "XTuple", "equivalent", "joinable", "more_informative", "try_join", "tuple_join", "tuple_meet",
    # relations
    "Relation", "RelationSchema", "XRelation", "as_xrelation",
    # set ops / lattice
    "difference", "union", "x_intersection",
    "AttributeUniverse", "bottom", "top", "pseudo_complement", "has_boolean_complement",
    "check_lattice_laws", "check_distributivity", "check_difference_laws",
    "complement_counterexample", "boolean_sublattice_elements",
    # three-valued logic
    "FALSE", "NI_TRUTH", "TRUE", "TRUTH_VALUES", "TruthValue", "compare", "conjunction", "disjunction", "truth_of",
    # algebra
    "algebra", "divide", "divide_by_images", "image_set", "join_on", "product", "project", "rename",
    "select_attributes", "select_constant", "select_predicate", "theta_join", "union_join",
    # query
    "ALWAYS_FALSE", "ALWAYS_TRUE", "And", "AttributeRef", "Comparison", "Constant", "Not", "Or",
    "Parameter", "Predicate", "Query", "Term", "TruthConstant", "collect_parameters",
    "evaluate_lower_bound", "evaluate_truth_partition", "substitute_parameters",
    # errors
    "AlgebraError", "AttributeNotFound", "ConstraintViolation", "DomainError", "KeyViolation",
    "NotJoinableError", "NotNullViolation", "QuelError", "QuelLexError", "QuelParseError",
    "QuelSemanticError", "ReferentialViolation", "ReproError", "SchemaError",
    "SessionClosedError", "StaleResultError",
    "StorageError", "TautologyError", "UnionCompatibilityError", "WalError", "WalWarning",
]
