"""Exception hierarchy for the null-relations reproduction library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can distinguish library failures from programming mistakes with a
single ``except`` clause.  The hierarchy mirrors the conceptual layers of
the paper:

* schema-level problems (:class:`SchemaError`, :class:`AttributeNotFound`,
  :class:`DomainError`),
* tuple-lattice problems (:class:`NotJoinableError`),
* algebra problems (:class:`AlgebraError`, :class:`UnionCompatibilityError`),
* query-language problems (:class:`QuelError` and its lexer/parser/semantic
  subclasses),
* constraint violations (:class:`ConstraintViolation` and subclasses).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class SchemaError(ReproError):
    """A relation schema is malformed or used inconsistently."""


class AttributeNotFound(SchemaError):
    """An attribute name was referenced that the schema does not declare."""

    def __init__(self, attribute: str, available=None):
        self.attribute = attribute
        self.available = tuple(available) if available is not None else None
        message = f"attribute {attribute!r} not found"
        if self.available is not None:
            message += f" (available: {', '.join(self.available)})"
        super().__init__(message)


class DomainError(ReproError):
    """A value lies outside the (extended) domain of its attribute."""


class NotJoinableError(ReproError):
    """The tuple join ``r1 v r2`` was requested for non-joinable tuples.

    Section 3 of the paper only defines the join of two tuples when, for
    every attribute on which both are non-null, their values agree.
    """


class AlgebraError(ReproError):
    """An extended relational-algebra operation was applied incorrectly."""


class UnionCompatibilityError(AlgebraError):
    """A classical (Codd) operation required union-compatible operands.

    x-relations never raise this: closure under the extended operators is
    the point of Section 7.  It is raised only by the Codd-relation
    baseline, which retains the classical preconditions.
    """


class QuelError(ReproError):
    """Base class for errors in the QUEL front end."""


class QuelLexError(QuelError):
    """The QUEL lexer met an unexpected character."""

    def __init__(self, message: str, position: int, line: int, column: int):
        self.position = position
        self.line = line
        self.column = column
        super().__init__(f"{message} at line {line}, column {column}")


class QuelParseError(QuelError):
    """The QUEL parser met an unexpected token."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} at line {line}, column {column}"
        super().__init__(message)


class QuelSemanticError(QuelError):
    """A QUEL query refers to unknown ranges, attributes, or mistyped terms."""


class ConstraintViolation(ReproError):
    """An integrity constraint was violated by an update."""


class KeyViolation(ConstraintViolation):
    """A key (uniqueness) constraint was violated."""


class NotNullViolation(ConstraintViolation):
    """A NOT NULL constraint was violated."""


class ReferentialViolation(ConstraintViolation):
    """A referential-integrity (foreign key) constraint was violated."""


class StorageError(ReproError):
    """A catalog or table operation failed (duplicate name, missing table...)."""


class StaleResultError(StorageError):
    """An undrained lazy result set would read state mutated since execute.

    Raised when a streaming pipeline whose plan probes a *live* persistent
    index (an index-nested-loop join) is pulled after the probed table was
    mutated (or its indexes changed) since the statement executed: the
    probes would silently see post-statement rows, so the read fails
    loudly instead.  Drain promptly (``ResultSet.rows`` does) when
    statement-time answers must survive subsequent writes; full
    statement-time consistency via versioned indexes is the MVCC roadmap
    item.
    """


class SessionClosedError(StorageError):
    """An operation reached a :class:`~repro.api.session.Session` (or a
    prepared statement / result set belonging to one) after
    ``Session.close()``.  Close is deliberate and final: prepared handles
    and undrained lazy result sets are invalidated rather than left to
    read through a connection their owner already released."""


class WalError(StorageError):
    """The write-ahead log or a checkpoint file could not be used."""


class WalWarning(UserWarning):
    """Durable state diverges from the live database in a recoverable way.

    Emitted when an unpicklable constraint (e.g. a :class:`RowConstraint`
    closing over a lambda) has to be dropped from a checkpoint or log
    record, and again when such a gap is seen at recovery time — the
    recovered rows all satisfied the constraint when logged, but future
    mutations will not be checked against it until the caller re-attaches
    it with :meth:`Table.add_constraint`.
    """


class TautologyError(ReproError):
    """The tautology detector was given an expression it cannot analyse."""
