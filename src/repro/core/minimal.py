"""Minimal-form reduction of relations (Definition 4.6).

A relation is a *minimal representation* of its x-relation when no proper
subset of its rows represents the same x-relation.  The reduction removes

* the null tuple, and
* every tuple that is less informative than some other tuple,

which the paper describes as "an extension of the process of removing
duplicate tuples in tables representing conventional relations".

Two algorithms are provided and benchmarked against each other (experiment
E12 in DESIGN.md):

* :func:`reduce_rows_naive` — the textbook O(n²) pairwise scan, a direct
  transliteration of the definition, kept as the oracle the property tests
  compare against;
* :func:`reduce_rows_hashed` — the production path, delegating to the
  signature-superset strategy of the dominance engine
  (:func:`repro.core.engine.bulk_reduce`): a tuple can only be subsumed by
  a tuple whose non-null attribute set is a *superset* of its own, so rows
  are partitioned by attribute-set signature and candidate dominators are
  found by hashing the superset partitions' projections — a handful of
  dict probes per row instead of a scan (and instead of the retired
  strategy that indexed all ``2^k`` attribute subsets of every row).

Both return the same set of rows; property-based tests
(``tests/test_engine_properties.py``) assert agreement.
"""

from __future__ import annotations

from typing import Iterable, List

from .engine.dominance import bulk_reduce
from .tuples import XTuple


def reduce_rows_naive(rows: Iterable[XTuple]) -> List[XTuple]:
    """Quadratic reduction to minimal form.

    Keeps a row iff it is not the null tuple and no distinct row is more
    informative than it.  Equivalent duplicate rows are already collapsed
    by the canonical :class:`XTuple` representation, so "distinct" here is
    plain set distinctness.
    """
    unique = list(set(rows))
    result: List[XTuple] = []
    for candidate in unique:
        if candidate.is_null_tuple():
            continue
        dominated = False
        for other in unique:
            if other != candidate and other.more_informative_than(candidate):
                dominated = True
                break
        if not dominated:
            result.append(candidate)
    return result


def reduce_rows_hashed(rows: Iterable[XTuple], max_subset_width: int = 12) -> List[XTuple]:
    """Signature-partitioned reduction to minimal form.

    A row with attribute set ``S`` can only be dominated by a row whose
    attribute set is a *superset* of ``S`` and whose projection onto ``S``
    equals the row exactly, so reduction only needs, per signature present
    in the data, the pooled projections of the strictly-wider partitions —
    see :func:`repro.core.engine.bulk_reduce`, which this delegates to.

    The *max_subset_width* parameter is retained for backward
    compatibility but ignored: the engine's strategy enumerates only the
    signatures actually present, never the ``2^k`` subsets of each row, so
    wide tuples need no special-casing.
    """
    return bulk_reduce(rows)


def reduce_rows(rows: Iterable[XTuple]) -> List[XTuple]:
    """Default reduction strategy used by :meth:`Relation.minimal`.

    Chooses the engine's signature-partitioned strategy for collections
    large enough for it to pay off, otherwise the naive scan (whose
    constant factor wins on tiny inputs).
    """
    materialised = rows if isinstance(rows, (list, set, tuple, frozenset)) else list(rows)
    if len(materialised) > 32:
        return bulk_reduce(materialised)
    return reduce_rows_naive(materialised)


def is_minimal_rows(rows: Iterable[XTuple]) -> bool:
    """True when the collection is already in minimal form."""
    unique = list(set(rows))
    for candidate in unique:
        if candidate.is_null_tuple():
            return False
        for other in unique:
            if other != candidate and other.more_informative_than(candidate):
                return False
    return True
