"""Minimal-form reduction of relations (Definition 4.6).

A relation is a *minimal representation* of its x-relation when no proper
subset of its rows represents the same x-relation.  The reduction removes

* the null tuple, and
* every tuple that is less informative than some other tuple,

which the paper describes as "an extension of the process of removing
duplicate tuples in tables representing conventional relations".

Two algorithms are provided and benchmarked against each other (experiment
E12 in DESIGN.md):

* :func:`reduce_rows_naive` — the textbook O(n²) pairwise scan, a direct
  transliteration of the definition;
* :func:`reduce_rows_hashed` — a signature-bucketing strategy in the
  spirit of the paper's pointer to "combinatorial hashing" [Knuth 1973]:
  a tuple can only be subsumed by a tuple whose non-null attribute set is
  a superset of its own, so candidate dominators are looked up by hashing
  on attribute-subset signatures instead of scanning every row.

Both return the same set of rows; property-based tests assert agreement.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from .tuples import XTuple


def reduce_rows_naive(rows: Iterable[XTuple]) -> List[XTuple]:
    """Quadratic reduction to minimal form.

    Keeps a row iff it is not the null tuple and no distinct row is more
    informative than it.  Equivalent duplicate rows are already collapsed
    by the canonical :class:`XTuple` representation, so "distinct" here is
    plain set distinctness.
    """
    unique = list(set(rows))
    result: List[XTuple] = []
    for candidate in unique:
        if candidate.is_null_tuple():
            continue
        dominated = False
        for other in unique:
            if other != candidate and other.more_informative_than(candidate):
                dominated = True
                break
        if not dominated:
            result.append(candidate)
    return result


def _signature(t: XTuple) -> FrozenSet[str]:
    return frozenset(t.attributes)


def reduce_rows_hashed(rows: Iterable[XTuple], max_subset_width: int = 12) -> List[XTuple]:
    """Signature-bucketed reduction to minimal form.

    Rows are grouped by the frozenset of their non-null attributes.  A row
    with attribute set ``S`` can only be dominated by a row whose attribute
    set is a superset of ``S`` *and* agrees with it on ``S``; we therefore
    index rows by every subset of their attribute signature up to
    *max_subset_width* attributes wide, falling back to the naive scan for
    extremely wide tuples (where the subset lattice would explode).

    For the narrow-schema relations typical of the paper's examples and of
    our benchmarks this gives near-linear behaviour.
    """
    unique = list(set(rows))
    wide_rows = [t for t in unique if len(t) > max_subset_width]
    if wide_rows:
        # Mixed strategy would complicate the invariant; punt to the exact
        # algorithm for correctness when any tuple is very wide.
        return reduce_rows_naive(unique)

    # Index: projection-signature -> set of full rows having that projection.
    projection_index: Dict[Tuple[Tuple[str, object], ...], Set[XTuple]] = {}
    for t in unique:
        items = t.items()
        n = len(items)
        for width in range(n + 1):
            for combo in combinations(items, width):
                projection_index.setdefault(combo, set()).add(t)

    result: List[XTuple] = []
    for candidate in unique:
        if candidate.is_null_tuple():
            continue
        holders = projection_index.get(candidate.items(), set())
        # `holders` are exactly the rows whose bindings extend candidate's.
        dominated = any(other != candidate for other in holders)
        if not dominated:
            result.append(candidate)
    return result


def reduce_rows(rows: Iterable[XTuple]) -> List[XTuple]:
    """Default reduction strategy used by :meth:`Relation.minimal`.

    Chooses the hashed strategy for collections large enough for it to pay
    off, otherwise the naive scan.
    """
    materialised = rows if isinstance(rows, (list, set, tuple)) else list(rows)
    if len(materialised) > 64:
        return reduce_rows_hashed(materialised)
    return reduce_rows_naive(materialised)


def is_minimal_rows(rows: Iterable[XTuple]) -> bool:
    """True when the collection is already in minimal form."""
    unique = list(set(rows))
    for candidate in unique:
        if candidate.is_null_tuple():
            return False
        for other in unique:
            if other != candidate and other.more_informative_than(candidate):
                return False
    return True
