"""The three-valued logic of Section 5 (Table III).

Zaniolo's query-evaluation strategy keeps Codd's three truth values but
reinterprets the third one: instead of MAYBE ("the value exists, so the
comparison might hold") the third value is ``ni`` ("no information").  The
truth tables are the standard Kleene strong tables; what changes is the
*interpretation* and, crucially, the decision to return only the tuples
that evaluate to TRUE (the lower bound ``||Q||_*``).

This module defines:

* :class:`TruthValue` — ``TRUE``, ``FALSE``, ``NI_TRUTH`` with the Table III
  connectives (``&``, ``|``, ``~``) and convenience predicates;
* :func:`compare` — evaluation of a relational expression ``x θ y`` over
  extended-domain values: any null operand makes the result ``ni``
  (footnote 7: a nonexistent value satisfies no comparison, and an unknown
  one yields no information);
* the comparison-operator registry shared with the algebra, the QUEL
  evaluator and the Codd baseline.

The Codd baseline (``repro.codd.threevalued``) re-exports the same tables
under the MAYBE name so the two systems can be compared side by side in
experiment E3.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, Iterable

from .errors import AlgebraError
from .nulls import is_null


class TruthValue:
    """One of the three truth values TRUE, FALSE, ni.

    Instances are singletons; use the module constants :data:`TRUE`,
    :data:`FALSE`, :data:`NI_TRUTH`.  The logical connectives follow
    Table III of the paper (Kleene's strong three-valued logic):

    ====== ======= ======= =======
    AND    TRUE    ni      FALSE
    ====== ======= ======= =======
    TRUE   TRUE    ni      FALSE
    ni     ni      ni      FALSE
    FALSE  FALSE   FALSE   FALSE
    ====== ======= ======= =======

    ====== ======= ======= =======
    OR     TRUE    ni      FALSE
    ====== ======= ======= =======
    TRUE   TRUE    TRUE    TRUE
    ni     TRUE    ni      ni
    FALSE  TRUE    ni      FALSE
    ====== ======= ======= =======

    NOT maps TRUE↔FALSE and fixes ni.
    """

    __slots__ = ("_name", "_rank")

    _instances: Dict[str, "TruthValue"] = {}

    def __new__(cls, name: str, rank: int):
        if name in cls._instances:
            return cls._instances[name]
        instance = super().__new__(cls)
        instance._name = name
        instance._rank = rank
        cls._instances[name] = instance
        return instance

    @property
    def name(self) -> str:
        return self._name

    # -- predicates -----------------------------------------------------------
    def is_true(self) -> bool:
        return self._name == "TRUE"

    def is_false(self) -> bool:
        return self._name == "FALSE"

    def is_ni(self) -> bool:
        return self._name == "ni"

    # -- connectives (Table III) -------------------------------------------------
    def and_(self, other: "TruthValue") -> "TruthValue":
        if self.is_false() or other.is_false():
            return FALSE
        if self.is_true() and other.is_true():
            return TRUE
        return NI_TRUTH

    def or_(self, other: "TruthValue") -> "TruthValue":
        if self.is_true() or other.is_true():
            return TRUE
        if self.is_false() and other.is_false():
            return FALSE
        return NI_TRUTH

    def not_(self) -> "TruthValue":
        if self.is_true():
            return FALSE
        if self.is_false():
            return TRUE
        return NI_TRUTH

    def __and__(self, other: "TruthValue") -> "TruthValue":
        return self.and_(other)

    def __or__(self, other: "TruthValue") -> "TruthValue":
        return self.or_(other)

    def __invert__(self) -> "TruthValue":
        return self.not_()

    # -- misc -----------------------------------------------------------------------
    def __bool__(self) -> bool:
        """Truthiness = "definitely true".

        This is the lower-bound discipline of Section 5: a tuple is kept
        only when its predicate is TRUE; FALSE and ni are both discarded.
        """
        return self.is_true()

    def __repr__(self) -> str:
        return self._name

    def __hash__(self) -> int:
        return hash(("TruthValue", self._name))

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, TruthValue):
            return self._name == other._name
        return NotImplemented


#: Definitely true.
TRUE = TruthValue("TRUE", 2)
#: Definitely false.
FALSE = TruthValue("FALSE", 0)
#: No information (the third truth value of Table III).
NI_TRUTH = TruthValue("ni", 1)

#: All three truth values, handy for exhaustive property tests.
TRUTH_VALUES = (TRUE, NI_TRUTH, FALSE)


def truth_of(value: Any) -> TruthValue:
    """Coerce a Python bool (or a TruthValue) to a :class:`TruthValue`."""
    if isinstance(value, TruthValue):
        return value
    return TRUE if value else FALSE


def conjunction(values: Iterable[TruthValue]) -> TruthValue:
    """Fold AND over an iterable; the empty conjunction is TRUE."""
    result = TRUE
    for v in values:
        result = result & v
        if result.is_false():
            return FALSE
    return result


def disjunction(values: Iterable[TruthValue]) -> TruthValue:
    """Fold OR over an iterable; the empty disjunction is FALSE."""
    result = FALSE
    for v in values:
        result = result | v
        if result.is_true():
            return TRUE
    return result


# ---------------------------------------------------------------------------
# Relational (comparison) expressions over extended domains
# ---------------------------------------------------------------------------

#: The comparison operators θ admitted in relational expressions (Sec. 5).
COMPARISON_OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "≠": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    "≤": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "≥": operator.ge,
}


def comparison_function(op: str) -> Callable[[Any, Any], bool]:
    """Look up the Python function implementing the comparison operator *op*."""
    try:
        return COMPARISON_OPERATORS[op]
    except KeyError:
        raise AlgebraError(f"unknown comparison operator {op!r}") from None


def compare(left: Any, op: str, right: Any) -> TruthValue:
    """Evaluate the relational expression ``left θ right`` in three-valued logic.

    If either operand is a null (of any interpretation) the expression
    evaluates to ``ni``; otherwise it evaluates to TRUE or FALSE as usual.
    A type mismatch between two non-null operands (e.g. comparing a string
    with an integer under ``<``) is reported as FALSE for equality-family
    operators and raises :class:`AlgebraError` for order operators, so
    silent nonsense never enters a query answer.
    """
    if is_null(left) or is_null(right):
        return NI_TRUTH
    func = comparison_function(op)
    try:
        return truth_of(func(left, right))
    except TypeError:
        if func in (operator.eq, operator.ne):
            return truth_of(func is operator.ne)
        raise AlgebraError(
            f"cannot compare {left!r} and {right!r} with {op!r}: incompatible types"
        ) from None
