"""The lattice of x-relations (Sections 4 and 7).

Propositions 4.4–4.7 establish that union and x-intersection are the least
upper bound and greatest lower bound of the containment order ⊒, so the
x-relations over a universe of attributes form a lattice — a *distributive*
one ((4.4)/(4.5)) with a bottom (the empty x-relation) and, when every
domain is finite, a top ``TOP_U = DOM(A1) × ... × DOM(Ap)``.

Section 7 sharpens this: x-relations form a **pseudo-complemented
distributive (Brouwerian) lattice**, not a Boolean algebra.  The
pseudo-complement is ``R* = TOP_U − R̂`` (7.1); pseudo-complements of a
Brouwerian lattice themselves form a Boolean lattice (here: the total
x-relations with scope U), and the two structures share union but differ
in their meets — ordinary intersection versus x-intersection — which the
paper illustrates with the ``{(a,b1)} / {(a,b2)}`` example.

This module provides

* :class:`AttributeUniverse` — a finite universe U with finite domains,
  able to materialise ``TOP_U`` and enumerate all total tuples;
* :func:`bottom` / :func:`top` / :func:`pseudo_complement`;
* law-checking helpers (:func:`check_lattice_laws`,
  :func:`check_distributivity`, :func:`has_boolean_complement`) used by the
  property-based tests and by benchmark E8 to *demonstrate* the paper's
  structural claims on concrete universes.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .domains import Domain, EnumeratedDomain
from .errors import DomainError, SchemaError
from .relation import Relation, RelationSchema
from .setops import difference, union, x_intersection
from .tuples import XTuple
from .xrelation import XRelation


class AttributeUniverse:
    """A finite universe of attributes U with a finite domain per attribute.

    Needed whenever ``TOP_U`` must be materialised (pseudo-complements,
    complement counter-examples, exhaustive law checks).  Keep the domains
    tiny — ``TOP_U`` has ``∏|DOM(Ai)|`` rows.
    """

    def __init__(self, domains: Mapping[str, Domain], name: str = "U"):
        if not domains:
            raise SchemaError("an attribute universe needs at least one attribute")
        for attribute, domain in domains.items():
            if not domain.is_finite():
                raise DomainError(
                    f"attribute {attribute!r} has an infinite domain; TOP_U would be infinite"
                )
        self.name = name
        self._domains: Dict[str, Domain] = dict(domains)
        self._attributes: Tuple[str, ...] = tuple(domains.keys())

    @classmethod
    def from_values(cls, values: Mapping[str, Sequence], name: str = "U") -> "AttributeUniverse":
        """Build a universe from explicit value lists per attribute."""
        return cls(
            {a: EnumeratedDomain(vs, name=f"DOM({a})") for a, vs in values.items()},
            name=name,
        )

    @property
    def attributes(self) -> Tuple[str, ...]:
        return self._attributes

    def domain(self, attribute: str) -> Domain:
        return self._domains[attribute]

    def schema(self, name: str = "TOP") -> RelationSchema:
        return RelationSchema(self._attributes, self._domains, name=name)

    def cardinality(self) -> int:
        """Number of total tuples in ``TOP_U``."""
        size = 1
        for domain in self._domains.values():
            size *= len(domain)
        return size

    def total_tuples(self) -> Iterator[XTuple]:
        """Enumerate every total tuple over the universe."""
        value_lists = [list(self._domains[a]) for a in self._attributes]
        for combo in iter_product(*value_lists):
            yield XTuple.from_values(self._attributes, combo)

    def all_tuples(self) -> Iterator[XTuple]:
        """Enumerate every tuple of U*, i.e. with each cell either a value or ni.

        The count is ``∏(|DOM(Ai)| + 1)``; use only on tiny universes.
        """
        value_lists = [list(self._domains[a]) + [None] for a in self._attributes]
        for combo in iter_product(*value_lists):
            yield XTuple(
                (a, v) for a, v in zip(self._attributes, combo) if v is not None
            )

    def __repr__(self) -> str:
        parts = ", ".join(f"{a}:{len(self._domains[a])}" for a in self._attributes)
        return f"AttributeUniverse({self.name!r}, {parts})"


# ---------------------------------------------------------------------------
# Bottom, top, pseudo-complement
# ---------------------------------------------------------------------------

def bottom(attributes: Sequence[str] = ("A",)) -> XRelation:
    """The bottom element ∅̂ of the lattice, represented by an empty relation."""
    return XRelation(Relation.empty(attributes, name="∅"))


def top(universe: AttributeUniverse) -> XRelation:
    """``TOP_U``: the Cartesian product of all (extended-by-nothing) domains.

    Characterised by ``R̂ ∪ TOP_U = TOP_U`` for every R̂ over the universe.
    """
    relation = Relation(universe.schema("TOP_U"), validate=False)
    relation._rows = set(universe.total_tuples())
    return XRelation(relation)


def pseudo_complement(x: XRelation, universe: AttributeUniverse) -> XRelation:
    """The pseudo-complement ``R* = TOP_U − R̂`` of (7.1).

    ``R*`` is the smallest x-relation whose union with ``R̂`` yields
    ``TOP_U`` (Proposition 4.7 applied to the top).  It is always a *total*
    x-relation with scope U — that is how the Boolean lattice of
    pseudo-complements arises inside the Brouwerian lattice.
    """
    return top(universe).difference(x, name=f"{x.name}*")


def is_total_with_scope_u(x: XRelation, universe: AttributeUniverse) -> bool:
    """True when x is a total x-relation over the full universe (a pseudo-complement candidate)."""
    return all(t.is_total_on(universe.attributes) for t in x.rows())


# ---------------------------------------------------------------------------
# Law checking (used by tests and benchmark E8)
# ---------------------------------------------------------------------------

def check_lattice_laws(a: XRelation, b: XRelation, c: XRelation) -> Dict[str, bool]:
    """Verify the lattice axioms on a concrete triple of x-relations.

    Returns a dict mapping law names to booleans; every value should be
    True.  The laws checked are idempotence, commutativity, associativity,
    absorption, and the lub/glb characterisations of Propositions 4.4/4.5.
    """
    results: Dict[str, bool] = {}
    results["union_idempotent"] = (a | a) == a
    results["meet_idempotent"] = (a & a) == a
    results["union_commutative"] = (a | b) == (b | a)
    results["meet_commutative"] = (a & b) == (b & a)
    results["union_associative"] = ((a | b) | c) == (a | (b | c))
    results["meet_associative"] = ((a & b) & c) == (a & (b & c))
    results["absorption_1"] = (a | (a & b)) == a
    results["absorption_2"] = (a & (a | b)) == a
    results["union_is_upper_bound"] = (a | b) >= a and (a | b) >= b
    results["meet_is_lower_bound"] = a >= (a & b) and b >= (a & b)
    return results


def check_distributivity(a: XRelation, b: XRelation, c: XRelation) -> Dict[str, bool]:
    """Verify the distributive laws (4.4) and (4.5) on a concrete triple."""
    return {
        "meet_over_union": (a & (b | c)) == ((a & b) | (a & c)),
        "union_over_meet": (a | (b & c)) == ((a | b) & (a | c)),
    }


def check_difference_laws(a: XRelation, b: XRelation) -> Dict[str, bool]:
    """Verify Propositions 4.6 and 4.7 on a concrete pair.

    * Prop. 4.6: if ``a ⊒ b`` then ``(a − b) ∪ b = a``.
    * Prop. 4.7: for any x with ``x ∪ b ⊒ a``(here x = a), ``x ⊒ a − b``.
    """
    results: Dict[str, bool] = {}
    if a >= b:
        results["difference_union_restores"] = ((a - b) | b) == a
    results["difference_minimality"] = a >= (a - b)
    results["difference_union_covers"] = ((a - b) | b) >= a if a >= b else True
    return results


def has_boolean_complement(x: XRelation, universe: AttributeUniverse) -> bool:
    """Does x have a true Boolean complement inside the lattice?

    A complement would satisfy ``x ∩̂ x' = ∅̂`` and ``x ∪ x' = TOP_U``.
    The paper shows that in general none exists (the Section 4 example with
    ``DOM(A) = {a1}``, ``DOM(B) = {b1, b2}``); the pseudo-complement only
    satisfies the union condition.  We check the pseudo-complement, which
    is the only candidate that can work (it is the largest element whose
    union with x is the top and the smallest that could avoid overlap).
    """
    candidate = pseudo_complement(x, universe)
    joins_to_top = (x | candidate) == top(universe)
    meets_to_bottom = (x & candidate).is_empty()
    return joins_to_top and meets_to_bottom


def complement_counterexample() -> Dict[str, object]:
    """Reproduce the paper's Section 4 counter-example to complementation.

    Universe ``U = {A, B}`` with ``DOM(A) = {a1}``, ``DOM(B) = {b1, b2}``;
    the x-relation ``R̂ = {(a1, b1)}`` has no complement: any x-relation
    whose union with R̂ reaches the top must x-contain ``(a1, b2)``, and
    then the tuple ``(a1, -)`` x-belongs to the x-intersection, which is
    therefore not empty.  Returns the ingredients so tests and the E8
    benchmark can assert each step.
    """
    universe = AttributeUniverse.from_values({"A": ["a1"], "B": ["b1", "b2"]})
    r = XRelation.from_rows(["A", "B"], [("a1", "b1")], name="R")
    r_star = pseudo_complement(r, universe)
    overlap = r & r_star
    return {
        "universe": universe,
        "r": r,
        "pseudo_complement": r_star,
        "union_is_top": (r | r_star) == top(universe),
        "intersection": overlap,
        "intersection_empty": overlap.is_empty(),
        "witness_in_both": XTuple(A="a1"),
    }


# ---------------------------------------------------------------------------
# The Boolean sublattice of pseudo-complements (Section 7)
# ---------------------------------------------------------------------------

def boolean_sublattice_elements(universe: AttributeUniverse) -> List[XRelation]:
    """All pseudo-complements over a (tiny!) universe.

    These are exactly the total x-relations with scope U; there are
    ``2^{|TOP_U|}`` of them, so keep the universe minuscule.  Used by tests
    that verify the Section 7 claim that the pseudo-complements form a
    Boolean lattice whose meet is plain set intersection.
    """
    top_rows = list(universe.total_tuples())
    if len(top_rows) > 16:
        raise DomainError("universe too large to enumerate the Boolean sublattice")
    elements: List[XRelation] = []
    for mask in range(2 ** len(top_rows)):
        rows = [t for i, t in enumerate(top_rows) if mask & (1 << i)]
        relation = Relation(universe.schema(f"B{mask}"), validate=False)
        relation._rows = set(rows)
        elements.append(XRelation(relation))
    return elements


def set_intersection_of_totals(a: XRelation, b: XRelation, universe: AttributeUniverse) -> XRelation:
    """Plain set intersection of two total x-relations with scope U.

    This is the meet of the Boolean sublattice; contrasting it with the
    x-intersection on the same operands exhibits the "two different meets"
    phenomenon the paper highlights at the end of Section 7.
    """
    rows = set(a.rows()) & set(b.rows())
    relation = Relation(universe.schema(f"({a.name} ∩ {b.name})"), validate=False)
    relation._rows = rows
    return XRelation(relation)
