"""The dominance/containment engine: fast kernels for the information ordering.

Section 4 of the paper points out that the naive implementations of the
generalised set operations and of reduction to minimal form cost
``O(|R1| · |R2|)`` and ``O(n²)`` respectively, and that "more sophisticated
techniques, such as combinatorial hashing, can provide more efficient
solutions".  This subpackage is that technique, shared by every hot path
in the library:

* :class:`~repro.core.engine.dominance.DominanceIndex` — rows partitioned
  by attribute-set *signature* and hash-indexed on their bound values, so
  "find rows more informative than ``t``" is a handful of dict probes over
  the signature-superset partitions instead of a full scan.  Used by
  :meth:`Relation.subsumes <repro.core.relation.Relation.subsumes>`,
  :func:`setops.difference <repro.core.setops.difference>` and the storage
  layer's live per-table index.  The batch entry points ``bulk_add`` /
  ``bulk_discard`` / ``bulk_probe_dominated`` partition once per batch
  (one set union and one invalidation per touched partition, one
  C-speed ``itemgetter`` per signature pair) — they are what makes
  :meth:`Table.insert_many <repro.storage.table.Table.insert_many>` /
  ``delete_many`` / ``load`` amortise index maintenance instead of paying
  it per row.
* :func:`~repro.core.engine.dominance.bulk_reduce` — one-shot minimal-form
  reduction (Definition 4.6) with the same signature-superset strategy;
  the backend of :func:`repro.core.minimal.reduce_rows`.
* :func:`~repro.core.engine.joins.pair_candidates` — the candidate-pair
  generator behind :func:`setops.x_intersection
  <repro.core.setops.x_intersection>`: only row pairs that agree on at
  least one bound attribute value can have a non-null meet, so the full
  ``n × m`` meet product is never enumerated.
* :func:`~repro.core.engine.joins.equi_join_rows` — the hash equi-join
  kernel the QUEL planner picks when a qualification contains equalities
  between two range variables; accepts attribute *lists*, so every
  equality conjunct linking two ranges fuses into one composite-key
  probe with no residual selection left behind.
* :func:`~repro.core.engine.joins.index_probe_join_rows` — the
  index-nested-loop variant: when a persistent
  :class:`~repro.storage.index.HashIndex` already covers the fused join
  key, each outer row probes the live index instead of rebuilding hash
  buckets per query; the cost-based planner emits it for indexed,
  unfiltered ranges.

The naive, definitional forms are retained throughout the library as
oracles; the property tests in ``tests/test_engine_properties.py`` assert
exact agreement, so routing through the engine cannot drift from
Definitions 3.1 / 4.1–4.8.
"""

from .dominance import DominanceIndex, bulk_reduce
from .joins import (
    build_join_buckets,
    equi_join_rows,
    index_probe_join_rows,
    pair_candidates,
    probe_join_block,
)

__all__ = [
    "DominanceIndex",
    "build_join_buckets",
    "bulk_reduce",
    "equi_join_rows",
    "index_probe_join_rows",
    "pair_candidates",
    "probe_join_block",
]
