"""Signature-partitioned dominance index over X-tuples.

The key observation (Definition 3.1) is that a tuple ``r`` is more
informative than ``t`` iff ``r`` agrees with ``t`` on every attribute
where ``t`` is non-null.  In the canonical :class:`~repro.core.tuples.XTuple`
representation this means:

* ``signature(r) ⊇ signature(t)``, where the *signature* of a tuple is the
  set of attributes it binds, and
* the projection of ``r`` onto ``signature(t)`` equals ``t`` exactly.

So dominators of ``t`` can be found without scanning: partition the rows
by signature, and for each partition whose signature is a superset of
``t``'s, hash the partition's rows on their projection onto ``t``'s
signature and probe with ``t``'s own values.  The number of distinct
signatures is bounded by the number of null patterns actually present in
the data (at most ``2^k`` for schema width ``k``, typically far fewer), so
a probe is a handful of dict lookups.

Two convenient corollaries of the canonical tuple form keep the index
simple:

* two *distinct* rows with the same signature can never dominate each
  other (equal projections onto the shared signature would make them the
  same canonical tuple), so only strict-superset partitions matter for
  strict dominance;
* information-wise equivalence coincides with equality, so the non-strict
  probe only needs one extra membership test in the tuple's own partition.

Projection maps are built lazily per ``(partition, probe-signature)`` pair
and memoised until the partition mutates; building one costs a single pass
over the partition, after which probes from every same-signature tuple
are O(1).
"""

from __future__ import annotations

from itertools import chain
from operator import itemgetter
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..tuples import XTuple

#: A signature: the sorted tuple of attributes a row binds (the canonical
#: ``XTuple.attributes`` form, cheap to produce and hashable).
Signature = Tuple[str, ...]

#: A projection key: the row's values on a fixed, sorted attribute list.
ValueKey = Tuple


def _signature(row: XTuple) -> Signature:
    return row.attributes


def _group_by_signature(rows: Iterable[XTuple]) -> Dict[Signature, List[XTuple]]:
    """Group a batch of rows by signature (the shared bulk-entry first pass)."""
    groups: Dict[Signature, List[XTuple]] = {}
    for row in rows:
        sig = row.attributes
        members = groups.get(sig)
        if members is None:
            members = groups[sig] = []
        members.append(row)
    return groups


class DominanceIndex:
    """An incremental index answering dominance probes in ~O(#signatures).

    Supports the full mutation protocol the storage layer needs (``add`` /
    ``discard`` / ``clear`` / ``rebuild``), so a :class:`~repro.storage.table.Table`
    can keep one alive across inserts and deletes.  For one-shot batch
    reduction prefer :func:`bulk_reduce`, which skips the invalidation
    bookkeeping entirely.
    """

    __slots__ = ("_partitions", "_partition_sets", "_projections", "_supersets", "_size")

    def __init__(self, rows: Iterable[XTuple] = ()):
        # signature -> set of rows with exactly that signature
        self._partitions: Dict[Signature, Set[XTuple]] = {}
        # frozenset mirror of the partition keys, for subset tests
        self._partition_sets: Dict[Signature, FrozenSet[str]] = {}
        # partition signature -> probe signature -> value-key -> rows
        self._projections: Dict[Signature, Dict[Signature, Dict[ValueKey, List[XTuple]]]] = {}
        # probe signature -> partition signatures that strictly contain it
        self._supersets: Dict[Signature, Tuple[Signature, ...]] = {}
        self._size = 0
        self.bulk_add(rows)

    # -- mutation -----------------------------------------------------------
    def add(self, row: XTuple) -> None:
        sig = _signature(row)
        partition = self._partitions.get(sig)
        if partition is None:
            partition = self._partitions[sig] = set()
            self._partition_sets[sig] = frozenset(sig)
            self._supersets.clear()  # a new partition may extend superset lists
        if row not in partition:
            partition.add(row)
            self._projections.pop(sig, None)
            self._size += 1

    def discard(self, row: XTuple) -> bool:
        sig = _signature(row)
        partition = self._partitions.get(sig)
        if partition is None or row not in partition:
            return False
        partition.remove(row)
        self._size -= 1
        self._projections.pop(sig, None)
        if not partition:
            del self._partitions[sig]
            del self._partition_sets[sig]
            self._supersets.clear()
        return True

    def bulk_add(self, rows: Iterable[XTuple]) -> int:
        """Add a batch of rows, partitioning once for the whole batch.

        Equivalent to ``for row in rows: self.add(row)`` but amortised:
        rows are grouped by signature first, each touched partition is
        updated with one set union, its projection maps are invalidated
        once, and the superset memo is cleared at most once (only when the
        batch introduces a new signature).  Returns the number of rows
        actually added (duplicates of indexed rows count for nothing).
        """
        groups = _group_by_signature(rows)
        added_total = 0
        new_partition = False
        for sig, members in groups.items():
            partition = self._partitions.get(sig)
            if partition is None:
                partition = self._partitions[sig] = set()
                self._partition_sets[sig] = frozenset(sig)
                new_partition = True
            before = len(partition)
            partition.update(members)
            added = len(partition) - before
            if added:
                added_total += added
                self._projections.pop(sig, None)
        self._size += added_total
        if new_partition:
            self._supersets.clear()
        return added_total

    def bulk_discard(self, rows: Iterable[XTuple]) -> int:
        """Remove a batch of rows; the bulk counterpart of :meth:`discard`.

        Groups the batch by signature so each touched partition is updated
        with one set difference and invalidated once.  Returns the number
        of rows actually removed.
        """
        groups = _group_by_signature(rows)
        removed_total = 0
        partition_dropped = False
        for sig, members in groups.items():
            partition = self._partitions.get(sig)
            if partition is None:
                continue
            before = len(partition)
            partition.difference_update(members)
            removed = before - len(partition)
            if removed:
                removed_total += removed
                self._projections.pop(sig, None)
                if not partition:
                    del self._partitions[sig]
                    del self._partition_sets[sig]
                    partition_dropped = True
        self._size -= removed_total
        if partition_dropped:
            self._supersets.clear()
        return removed_total

    def clear(self) -> None:
        self._partitions.clear()
        self._partition_sets.clear()
        self._projections.clear()
        self._supersets.clear()
        self._size = 0

    def rebuild(self, rows: Iterable[XTuple]) -> None:
        self.clear()
        self.bulk_add(rows)

    def __len__(self) -> int:
        return self._size

    def __contains__(self, row: XTuple) -> bool:
        partition = self._partitions.get(_signature(row))
        return partition is not None and row in partition

    # -- probe plumbing ------------------------------------------------------
    def _superset_signatures(self, sig: Signature) -> Tuple[Signature, ...]:
        """Partition signatures that *strictly* contain *sig* (memoised)."""
        cached = self._supersets.get(sig)
        if cached is None:
            width = len(sig)
            as_set = frozenset(sig)
            cached = tuple(
                psig
                for psig, pset in self._partition_sets.items()
                if len(psig) > width and as_set <= pset
            )
            self._supersets[sig] = cached
        return cached

    def _projection_map(self, partition_sig: Signature, probe_sig: Signature) -> Dict[ValueKey, List[XTuple]]:
        """Rows of *partition_sig*, keyed by their values on *probe_sig*."""
        per_partition = self._projections.setdefault(partition_sig, {})
        pmap = per_partition.get(probe_sig)
        if pmap is None:
            pmap = {}
            for row in self._partitions[partition_sig]:
                lookup = row._lookup
                key = tuple(lookup[a] for a in probe_sig)
                pmap.setdefault(key, []).append(row)
            per_partition[probe_sig] = pmap
        return pmap

    @staticmethod
    def _value_key(row: XTuple) -> ValueKey:
        return tuple(value for _, value in row.items())

    # -- probes --------------------------------------------------------------
    def has_dominator(self, row: XTuple, strict: bool = False) -> bool:
        """True when some indexed row is more informative than *row*.

        With ``strict=True`` the probe asks for a *strictly* more
        informative row — i.e. a row from a strictly wider signature (a
        same-signature dominator can only be ``row`` itself).
        """
        sig = _signature(row)
        if not strict:
            partition = self._partitions.get(sig)
            if partition is not None and row in partition:
                return True
        key = self._value_key(row)
        for psig in self._superset_signatures(sig):
            if key in self._projection_map(psig, sig):
                return True
        return False

    def probe_dominators(self, row: XTuple, strict: bool = False) -> List[XTuple]:
        """Every indexed row more informative than *row* (Definition 3.1)."""
        sig = _signature(row)
        out: List[XTuple] = []
        if not strict:
            partition = self._partitions.get(sig)
            if partition is not None and row in partition:
                out.append(row)
        key = self._value_key(row)
        for psig in self._superset_signatures(sig):
            out.extend(self._projection_map(psig, sig).get(key, ()))
        return out

    def probe_dominated(self, row: XTuple, strict: bool = False) -> List[XTuple]:
        """Every indexed row *less* informative than *row*.

        A dominated row has a signature contained in *row*'s and equals
        *row*'s projection onto it, so one projection + membership test per
        subset partition suffices — no projection maps needed.
        """
        sig_set = frozenset(row.attributes)
        width = len(sig_set)
        out: List[XTuple] = []
        for psig, partition in self._partitions.items():
            if len(psig) > width or not self._partition_sets[psig] <= sig_set:
                continue
            candidate = row.project(psig)
            if candidate in partition:
                if strict and len(psig) == width:
                    continue  # the only same-signature candidate is row itself
                out.append(candidate)
        return out

    def bulk_probe_dominated(self, rows: Iterable[XTuple]) -> Set[XTuple]:
        """The union of :meth:`probe_dominated` over a batch of rows.

        The batch form amortises the per-probe work: targets are grouped
        by signature, and for each (target-signature, subset-partition)
        pair one :func:`operator.itemgetter` projects *every* target in
        the group at C speed — instead of building one projected
        :class:`XTuple` per target per partition.  Backs
        :meth:`repro.storage.table.Table.delete_many`.

        Small batches fall back to per-row :meth:`probe_dominated`:
        building identity projection maps only pays off once several
        targets amortise the per-partition pass.
        """
        targets = rows if isinstance(rows, (list, tuple, set, frozenset)) else list(rows)
        out: Set[XTuple] = set()
        if len(targets) < 8:
            for row in targets:
                out.update(self.probe_dominated(row))
            return out
        groups: Dict[Signature, List[ValueKey]] = {}
        for row in targets:
            items = row.items()
            sig, values = zip(*items) if items else ((), ())
            groups.setdefault(sig, []).append(values)
        for sig, value_tuples in groups.items():
            sig_set = frozenset(sig)
            width = len(sig)
            for psig, pset in self._partition_sets.items():
                if len(psig) > width or not pset <= sig_set:
                    continue
                if not psig:
                    # The null-tuple partition: dominated by everything.
                    out.update(self._partitions[psig])
                    continue
                pmap = self._projection_map(psig, psig)
                getter = itemgetter(*(sig.index(a) for a in psig))
                if len(psig) == 1:
                    for values in value_tuples:
                        hit = pmap.get((getter(values),))
                        if hit:
                            out.update(hit)
                else:
                    for values in value_tuples:
                        hit = pmap.get(getter(values))
                        if hit:
                            out.update(hit)
        return out

    def __repr__(self) -> str:
        return (
            f"DominanceIndex(rows={self._size}, partitions={len(self._partitions)})"
        )


def bulk_reduce(rows: Iterable[XTuple]) -> List[XTuple]:
    """One-shot reduction to minimal form (Definition 4.6).

    Keeps a row iff it is not the null tuple and no *other* row is more
    informative than it — exactly
    :func:`repro.core.minimal.reduce_rows_naive`, but via the
    signature-superset strategy: for each signature present, pool the
    projections of every strictly-wider partition's rows onto it, then keep
    the members whose value key is not in that pool.

    Each row's value tuple is materialised once; projecting a wider
    partition onto a narrower signature is then a C-speed
    :func:`operator.itemgetter` over those tuples, so the inner loops never
    touch Python-level attribute lookups.

    Cost: with ``σ`` distinct signatures, ``Σ |partition| · #present-subsets``
    itemgetter applications plus one set probe per row — near-linear for
    the narrow-schema relations of the paper's examples and benchmarks,
    and never the ``2^k``-per-row subset enumeration of the old strategy.
    """
    # signature -> ([rows], [their value tuples, aligned])
    partitions: Dict[Signature, Tuple[List[XTuple], List[ValueKey]]] = {}
    seen: Set[XTuple] = set()
    for row in rows:
        if row in seen:
            continue
        seen.add(row)
        items = row.items()
        sig, values = zip(*items) if items else ((), ())
        entry = partitions.get(sig)
        if entry is None:
            entry = partitions[sig] = ([], [])
        entry[0].append(row)
        entry[1].append(values)

    if len(partitions) <= 1:
        # Zero or one signature: no row can strictly dominate another.
        return [row for row in seen if not row.is_null_tuple()]

    signature_sets = {sig: frozenset(sig) for sig in partitions}
    result: List[XTuple] = []
    for sig, (members, value_tuples) in partitions.items():
        if not sig:
            continue  # the null tuple never survives reduction
        width = len(sig)
        sig_set = signature_sets[sig]
        dominated_keys: Optional[Set] = None
        for psig, pset in signature_sets.items():
            if len(psig) <= width or not sig_set <= pset:
                continue
            if dominated_keys is None:
                dominated_keys = set()
            getter = itemgetter(*(psig.index(a) for a in sig))
            dominated_keys.update(map(getter, partitions[psig][1]))
        if not dominated_keys:
            result.extend(members)
        elif width == 1:
            # itemgetter with one index yields bare values, not 1-tuples.
            result.extend(
                row for row, values in zip(members, value_tuples)
                if values[0] not in dominated_keys
            )
        else:
            result.extend(
                row for row, values in zip(members, value_tuples)
                if values not in dominated_keys
            )
    return result


# ---------------------------------------------------------------------------
# Partition-aware reduction — the entry points a sharded pipeline needs
# ---------------------------------------------------------------------------

def partition_rows_by_signature(
    rows: Iterable[XTuple], partitions: int
) -> List[List[XTuple]]:
    """Shard *rows* into *partitions* lists, keeping each signature whole.

    The shard of a row is ``hash(signature) % partitions``, so every row
    carrying the same null pattern lands in the same shard.  A local
    :func:`bulk_reduce` per shard then eliminates all same-signature
    duplicates and every dominance *within* a co-sharded signature group;
    dominance across shards (a wider signature hashed elsewhere) is what
    :func:`merge_reduced` reconciles.  Correctness never depends on the
    placement — see :func:`merge_reduced` — the signature sharding only
    maximises how much reduction the workers can do locally.
    """
    if partitions < 1:
        raise ValueError(f"need at least one partition, got {partitions}")
    shards: List[List[XTuple]] = [[] for _ in range(partitions)]
    if partitions == 1:
        shards[0].extend(rows)
        return shards
    for row in rows:
        shards[hash(row.attributes) % partitions].append(row)
    return shards


def merge_reduced(shards: Iterable[Iterable[XTuple]]) -> List[XTuple]:
    """Reconcile locally-reduced shards into one global minimal form.

    The key lemma making sharded reduction correct for **any** partition
    function: reduction only ever *removes* dominated rows, and dominance
    is transitive, so for any split ``S = S1 ∪ S2``::

        reduce(reduce(S1) ∪ reduce(S2)) = reduce(S1 ∪ S2)

    A row dominated within its own shard is gone locally and would have
    been gone globally; a row dominated only by a row in another shard
    still meets its dominator here (local reduction cannot have removed a
    dominat**or** — only dominated rows are dropped, and the relation is
    transitive, so some dominator always survives).  This is the final
    ``Merge`` step of a partitioned pipeline: each worker ships its
    shard's minimal form, and one :func:`bulk_reduce` over the union
    restores the global minimal form of Definition 4.6.
    """
    return bulk_reduce(chain.from_iterable(shards))
