"""Candidate-pairing and hash-join kernels over X-tuples.

Two observations turn the quadratic pair loops of the set operations and
the planner into hash probes:

* **Meets** (x-intersection, 4.7): the meet ``r1 ∧ r2`` keeps exactly the
  bindings both tuples agree on, so a pair whose meet is *not* the null
  tuple must agree on at least one ``(attribute, value)`` item.  Indexing
  one side by its bound items makes "all pairs with a non-null meet"
  enumerable without touching the disagreeing pairs
  (:func:`pair_candidates`).
* **Equi-joins** (Section 5's TRUE-only discipline): a comparison
  ``t.A = m.B`` can only be TRUE when both sides are non-null and equal,
  so bucketing one operand on its ``B`` values and probing with the other
  operand's ``A`` values enumerates exactly the TRUE combinations
  (:func:`equi_join_rows`).  The QUEL planner picks this strategy instead
  of a Cartesian product followed by a selection.

Both kernels are pure row-level functions; schema handling stays with the
callers in :mod:`repro.core.setops`, :mod:`repro.core.algebra` and
:mod:`repro.quel.planner`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..nulls import is_ni
from ..tuples import XTuple


def pair_candidates(
    left_rows: Iterable[XTuple], right_rows: Iterable[XTuple]
) -> Iterator[Tuple[XTuple, XTuple]]:
    """Yield every pair ``(l, r)`` agreeing on at least one bound item.

    These are exactly the pairs whose meet ``l ∧ r`` is not the null
    tuple, i.e. the only pairs that can contribute a row to a *minimised*
    x-intersection (4.7).  Each qualifying pair is yielded once, even when
    it agrees on several items.
    """
    inverted: Dict[Tuple[str, Any], List[XTuple]] = {}
    for right in right_rows:
        for item in right.items():
            inverted.setdefault(item, []).append(right)
    if not inverted:
        return
    for left in left_rows:
        seen: set = set()
        for item in left.items():
            bucket = inverted.get(item)
            if not bucket:
                continue
            for right in bucket:
                marker = id(right)
                if marker not in seen:
                    seen.add(marker)
                    yield left, right


def meet_candidates(
    left_rows: Iterable[XTuple], right_rows: Iterable[XTuple]
) -> set:
    """The set of non-null meets ``{l ∧ r}`` over all candidate pairs.

    Equivalent to ``{l.meet(r) for l, r in full product} - {null tuple}``;
    used by :func:`repro.core.setops.x_intersection` ahead of reduction to
    minimal form (the null tuple never survives reduction, so skipping the
    disagreeing pairs loses nothing).
    """
    meets: set = set()
    for left, right in pair_candidates(left_rows, right_rows):
        meets.add(left.meet(right))
    return meets


def equi_join_rows(
    left_rows: Iterable[XTuple],
    right_rows: Iterable[XTuple],
    left_attr: Union[str, Sequence[str]],
    right_attr: Union[str, Sequence[str]],
) -> List[XTuple]:
    """Hash equi-join: tuple joins of row pairs with ``l[Aᵢ] = r[Bᵢ]`` for all i.

    *left_attr* / *right_attr* name the key attributes — a single
    attribute (the original form) or parallel sequences of attributes, in
    which case **all** the equalities are fused into one composite-key
    hash pass: one side is bucketed on its value *tuple*, the other side
    probes with its own, so a k-attribute equality link costs one hash
    probe per row instead of a join on one attribute followed by a
    residual selection over the (much larger) single-key result.

    The operand attribute sets must be disjoint (the planner renames every
    range with a ``variable.`` prefix before joining), so the tuple join
    always exists.  Rows null on *any* compared attribute are dropped,
    which is exactly the Section 5 lower-bound discipline: a comparison
    touching ``ni`` evaluates to ``ni``, a conjunction with an ``ni``
    operand is never TRUE, and the combination is not returned.
    """
    left_key = (left_attr,) if isinstance(left_attr, str) else tuple(left_attr)
    right_key = (right_attr,) if isinstance(right_attr, str) else tuple(right_attr)
    if len(left_key) != len(right_key):
        raise ValueError(
            f"join keys must pair up: {len(left_key)} left vs {len(right_key)} right attributes"
        )
    if not left_key:
        raise ValueError("an equi-join needs at least one attribute pair")
    out: List[XTuple] = []
    if len(left_key) == 1:
        # Single-attribute fast path: bare values as hash keys.
        la, ra = left_key[0], right_key[0]
        buckets: Dict[Any, List[XTuple]] = {}
        for right in right_rows:
            value = right[ra]
            if is_ni(value):
                continue
            buckets.setdefault(value, []).append(right)
        if not buckets:
            return out
        for left in left_rows:
            value = left[la]
            if is_ni(value):
                continue
            bucket = buckets.get(value)
            if not bucket:
                continue
            for right in bucket:
                out.append(left.join(right))
        return out
    composite: Dict[Tuple, List[XTuple]] = {}
    for right in right_rows:
        lookup = right._lookup
        key = tuple(lookup.get(a) for a in right_key)
        if None in key:  # _lookup stores only non-null bindings
            continue
        composite.setdefault(key, []).append(right)
    if not composite:
        return out
    for left in left_rows:
        lookup = left._lookup
        key = tuple(lookup.get(a) for a in left_key)
        if None in key:
            continue
        bucket = composite.get(key)
        if not bucket:
            continue
        for right in bucket:
            out.append(left.join(right))
    return out


def build_join_buckets(
    rows: Iterable[XTuple], key_attrs: Sequence[str]
) -> Dict[Tuple, List[XTuple]]:
    """The build phase of a hash equi-join, as a reusable kernel.

    Buckets *rows* by their value tuple on *key_attrs*; rows null on any
    key attribute are dropped (they can never satisfy the equality under
    the Section 5 TRUE-only discipline).  Both the planner's per-query
    hash joins and the streaming :class:`repro.exec.HashJoin` operator
    build their tables through here, so the null handling cannot diverge.
    """
    key_attrs = tuple(key_attrs)
    buckets: Dict[Tuple, List[XTuple]] = {}
    for row in rows:
        lookup = row._lookup
        key = tuple(lookup.get(a) for a in key_attrs)
        if None in key:  # _lookup stores only non-null bindings
            continue
        buckets.setdefault(key, []).append(row)
    return buckets


def probe_join_block(
    block: Iterable[XTuple],
    probe_attrs: Sequence[str],
    lookup: Callable[[Tuple], Iterable[XTuple]],
    transform: Callable[[XTuple], XTuple],
    cache: Dict[XTuple, XTuple],
    residual: Optional[Callable[[XTuple, XTuple], bool]] = None,
) -> List[XTuple]:
    """The probe phase of a hash/index equi-join, one block at a time.

    For each row of *block* that is total on *probe_attrs*, probes
    *lookup* with its key values and joins the matches after passing them
    through *transform* (the planner's ``variable.``-prefix rename).
    *cache* memoises the transform per distinct matched row; the caller
    owns it so the memoisation spans every block of one join.  This is
    the block-level entry point the streaming executor pulls on;
    :func:`index_probe_join_rows` is the whole-input convenience form.

    *residual* is the fused-residual hook: a predicate over the
    ``(probe row, raw build row)`` pair, evaluated **before** the joined
    tuple is constructed (and before the build row is renamed), so a
    residual conjunct the planner attached to the join rejects a
    non-qualifying pair at the cost of two dict reads instead of a tuple
    construction the next operator would immediately discard.  The build
    row arrives *unrenamed* (bare attribute names) — the planner's pair
    predicates are compiled against exactly that convention.
    """
    out: List[XTuple] = []
    probe_key = tuple(probe_attrs)
    for left in block:
        bindings = left._lookup
        key = tuple(bindings.get(a) for a in probe_key)
        if None in key:  # _lookup stores only non-null bindings
            continue
        for right in lookup(key):
            if residual is not None and not residual(left, right):
                continue
            renamed = cache.get(right)
            if renamed is None:
                renamed = cache[right] = transform(right)
            out.append(left.join(renamed))
    return out


def index_probe_join_rows(
    left_rows: Iterable[XTuple],
    probe_attrs: Sequence[str],
    lookup: Callable[[Tuple], Iterable[XTuple]],
    transform: Callable[[XTuple], XTuple],
    residual: Optional[Callable[[XTuple, XTuple], bool]] = None,
) -> List[XTuple]:
    """Index-nested-loop equi-join: probe a *live* hash index per left row.

    Instead of bucketing the right operand per query (the
    :func:`equi_join_rows` build phase — O(|right|) work and allocation
    every time), each left row probes *lookup* — typically the bound
    :meth:`repro.storage.index.HashIndex.lookup` of a persistent index the
    table already maintains — with its values on *probe_attrs*, ordered to
    match the index's key layout.  Matched rows pass through *transform*
    (the planner's ``variable.``-prefix rename), memoised per distinct row
    so a row matched by many probes is renamed once.

    Left rows null on any probe attribute are skipped — a comparison
    touching ``ni`` is never TRUE (Section 5) — and the index's own
    null-bucket rows are simply never returned by an exact lookup, so the
    TRUE-only discipline holds on both sides.  Output rows may include
    joins against stored rows a minimal representation would drop; each
    such row is dominated by the corresponding join against the dominating
    stored row, so the result is information-wise identical after
    reduction (which every plan applies).  *residual* is forwarded to
    :func:`probe_join_block` — a fused pair predicate evaluated before
    any joined tuple is built.
    """
    return probe_join_block(left_rows, probe_attrs, lookup, transform, {}, residual)
