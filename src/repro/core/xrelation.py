"""x-relations: equivalence classes of relations under ≅ (Definitions 4.3–4.5).

An *x-relation* is the class of all relations information-wise equivalent
to a given representation.  Working with the class rather than any single
representation is what restores clean set-theoretic behaviour in the
presence of nulls: containment, union, x-intersection and difference obey
the lattice laws of Section 4, and equality means "same information", not
"same table".

The class is implemented as a thin, immutable wrapper around a canonical
representation — the **minimal representation** (Definition 4.6), which the
paper proves unique over a given attribute set.  Two :class:`XRelation`
objects are equal iff their minimal representations carry the same rows,
i.e. iff the underlying relations are information-wise equivalent — this
is exactly Proposition 4.1 (mutual containment iff equality).

The arithmetic-style operators are available both as named methods
(:meth:`union`, :meth:`x_intersection`, :meth:`difference`, ...) and as
Python operators (``|``, ``&``, ``-``, ``<=``, ``in``), making x-relations
feel like ordinary sets — which is the paper's point.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Iterator, Optional, Sequence, Tuple, Union

from . import setops
from .domains import Domain
from .relation import Relation, RelationSchema, RowLike
from .tuples import XTuple


class XRelation:
    """An x-relation, held by its minimal representation.

    Construct it from a :class:`Relation` (or via :meth:`from_rows`); the
    representation is immediately reduced to minimal form and frozen.
    """

    __slots__ = ("_relation", "_row_set")

    def __init__(self, representation: Relation):
        minimal = representation.minimal()
        self._relation = minimal
        self._row_set: FrozenSet[XTuple] = frozenset(minimal.tuples())

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        attributes: Sequence[str],
        rows: Iterable[RowLike],
        name: str = "R",
        domains: Optional[dict] = None,
    ) -> "XRelation":
        return cls(Relation.from_rows(attributes, rows, name=name, domains=domains))

    @classmethod
    def empty(cls, attributes: Sequence[str] = ("A",), name: str = "∅") -> "XRelation":
        """The bottom element of the lattice (representable by an empty relation)."""
        return cls(Relation.empty(attributes, name=name))

    # -- representation access ---------------------------------------------------
    @property
    def representation(self) -> Relation:
        """The (unique, minimal) canonical representation."""
        return self._relation

    @property
    def schema(self) -> RelationSchema:
        return self._relation.schema

    @property
    def attributes(self) -> Tuple[str, ...]:
        return self._relation.schema.attributes

    @property
    def name(self) -> str:
        return self._relation.name

    def scope(self) -> Tuple[str, ...]:
        """Definition 4.7: the smallest attribute set representing this x-relation."""
        return self._relation.scope()

    def rows(self) -> FrozenSet[XTuple]:
        """The rows of the minimal representation."""
        return self._row_set

    def __iter__(self) -> Iterator[XTuple]:
        return iter(self._row_set)

    def __len__(self) -> int:
        """Number of rows in the minimal representation."""
        return len(self._row_set)

    def __bool__(self) -> bool:
        return bool(self._row_set)

    def is_empty(self) -> bool:
        """True when this is the bottom x-relation ∅̂."""
        return not self._row_set

    def is_total(self) -> bool:
        """True when the minimal representation has no nulls over its scope."""
        scope = self.scope()
        return all(t.is_total_on(scope) for t in self._row_set)

    # -- membership and ordering (Definitions 4.4, 4.5) ----------------------------------
    def x_contains(self, row: RowLike) -> bool:
        """Definition 4.5 / Proposition 4.2: ``t ∈̂ R̂``."""
        return self._relation.x_contains(row)

    def __contains__(self, row: RowLike) -> bool:
        return self.x_contains(row)

    def contains(self, other: "XRelation") -> bool:
        """Definition 4.4: ``self ⊒ other`` iff the representation subsumes other's."""
        return self._relation.subsumes(other._relation)

    def properly_contains(self, other: "XRelation") -> bool:
        return self.contains(other) and self != other

    def __ge__(self, other: "XRelation") -> bool:
        if not isinstance(other, XRelation):
            return NotImplemented
        return self.contains(other)

    def __le__(self, other: "XRelation") -> bool:
        if not isinstance(other, XRelation):
            return NotImplemented
        return other.contains(self)

    def __gt__(self, other: "XRelation") -> bool:
        if not isinstance(other, XRelation):
            return NotImplemented
        return self.properly_contains(other)

    def __lt__(self, other: "XRelation") -> bool:
        if not isinstance(other, XRelation):
            return NotImplemented
        return other.properly_contains(self)

    def __eq__(self, other: Any) -> bool:
        """Proposition 4.1: equality is mutual containment = same minimal rows."""
        if not isinstance(other, XRelation):
            return NotImplemented
        return self._row_set == other._row_set

    def __hash__(self) -> int:
        return hash(self._row_set)

    # -- lattice / set operations ------------------------------------------------------------------
    def union(self, other: "XRelation", name: Optional[str] = None) -> "XRelation":
        """(4.1)/(4.6): least upper bound in the lattice of x-relations."""
        return XRelation(setops.union(self._relation, other._relation, name=name))

    def x_intersection(self, other: "XRelation", name: Optional[str] = None) -> "XRelation":
        """(4.2)/(4.7): greatest lower bound (pairwise meets of rows)."""
        return XRelation(setops.x_intersection(self._relation, other._relation, name=name))

    def difference(self, other: "XRelation", name: Optional[str] = None) -> "XRelation":
        """(4.3)/(4.8): the smallest x-relation whose union with *other* covers self."""
        return XRelation(setops.difference(self._relation, other._relation, name=name))

    def __or__(self, other: "XRelation") -> "XRelation":
        return self.union(other)

    def __and__(self, other: "XRelation") -> "XRelation":
        return self.x_intersection(other)

    def __sub__(self, other: "XRelation") -> "XRelation":
        return self.difference(other)

    # -- algebra shortcuts (delegating to repro.core.algebra) ----------------------------------------
    def select_const(self, attribute: str, op: str, constant: Any) -> "XRelation":
        """Selection ``R[A θ k]`` (5.2)."""
        from .algebra import select_constant
        return select_constant(self, attribute, op, constant)

    def select_attrs(self, left: str, op: str, right: str) -> "XRelation":
        """Selection ``R[A θ B]`` (5.1)."""
        from .algebra import select_attributes
        return select_attributes(self, left, op, right)

    def project(self, attributes: Sequence[str]) -> "XRelation":
        """Projection ``R[X]`` (5.5)."""
        from .algebra import project
        return project(self, attributes)

    def product(self, other: "XRelation") -> "XRelation":
        """Cartesian product (5.3)."""
        from .algebra import product
        return product(self, other)

    def join(self, other: "XRelation", on: Sequence[str]) -> "XRelation":
        """Equi-join on X: ``R1 (·X) R2``."""
        from .algebra import join_on
        return join_on(self, other, on)

    def union_join(self, other: "XRelation", on: Sequence[str]) -> "XRelation":
        """Union-join (outer join) on X: ``R1 (*X) R2``."""
        from .algebra import union_join
        return union_join(self, other, on)

    def divide(self, other: "XRelation", by: Sequence[str]) -> "XRelation":
        """Division ``R (÷Y) S`` (6.1)–(6.5)."""
        from .algebra import divide
        return divide(self, other, by)

    def image(self, y: RowLike, y_attrs: Sequence[str], z_attrs: Sequence[str]) -> "XRelation":
        """The Z-image ``Z_R(y)`` of a Y-value (6.4)."""
        from .algebra import image_set
        return image_set(self, y, y_attrs, z_attrs)

    # -- presentation -------------------------------------------------------------------------------------
    def to_table(self) -> str:
        return self._relation.to_table()

    def __repr__(self) -> str:
        return f"XRelation({self._relation.schema.name!r}, rows={len(self._row_set)})"


def as_xrelation(value: Union[XRelation, Relation]) -> XRelation:
    """Coerce a :class:`Relation` (or pass through an :class:`XRelation`)."""
    if isinstance(value, XRelation):
        return value
    return XRelation(value)
