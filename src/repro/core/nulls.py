"""Null values and their interpretations.

The paper's central move is to replace the zoo of null interpretations
("value unknown", "value does not exist", marked nulls, probabilistic
nulls, ...) by a single, weaker *no-information* null, written ``ni`` and
printed as ``-`` in tables.  The ``ni`` null is a placeholder for *either*
an unknown *or* a nonexistent value: it asserts nothing.

This module provides:

* :data:`NI` — the singleton no-information null used throughout the
  extended relational model of Sections 3–7;
* :func:`is_null` / :func:`is_nonnull` — the canonical tests, which also
  recognise Python ``None`` as a convenience spelling of ``ni`` on input;
* the richer null taxonomy needed by the *baselines* the paper compares
  against: :class:`UnknownNull` (Codd 1979), :class:`NonexistentNull`
  (Lien 1979), and :class:`MarkedNull` (Imielinski–Lipski style marked
  nulls, used in the Section 2 discussion of "Bob Smith's manager is a
  woman");
* :func:`coerce_null` — normalisation of any null spelling to the
  canonical object used by the core model.

Only :data:`NI` ever appears inside core x-relations; the other classes
live in the ``repro.codd``, ``repro.lien`` and ``repro.worlds`` baselines.
"""

from __future__ import annotations

from typing import Any, Optional


class NoInformationNull:
    """The unique no-information null value ``ni``.

    There is exactly one instance, exported as :data:`NI`.  It is falsy,
    hashable, compares equal only to itself (and to ``None`` for input
    convenience via :func:`is_null`, *not* via ``==``), and prints as
    ``-`` to match the paper's tables.

    Footnote 4 of the paper notes that for the tuple-meet definition it is
    immaterial whether ``ni == ni`` holds; we choose reflexive equality so
    that tuples and relations can be hashed and deduplicated, but *no
    relational comparison* ever treats two nulls as matching: the
    three-valued logic layer (``repro.core.threevalued``) evaluates any
    comparison involving ``ni`` to the truth value ``ni``.
    """

    _instance: Optional["NoInformationNull"] = None

    def __new__(cls) -> "NoInformationNull":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ni"

    def __str__(self) -> str:
        return "-"

    def __bool__(self) -> bool:
        return False

    def __hash__(self) -> int:
        return hash("ni-no-information-null")

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, NoInformationNull)

    def __ne__(self, other: Any) -> bool:
        return not self.__eq__(other)

    def __copy__(self) -> "NoInformationNull":
        return self

    def __deepcopy__(self, memo) -> "NoInformationNull":
        return self

    def __reduce__(self):
        # Pickling must preserve the singleton property.
        return (NoInformationNull, ())


#: The no-information null, written ``-`` in the paper's tables.
NI = NoInformationNull()


class UnknownNull:
    """An "unknown" null: a value exists but is not known (Codd 1979).

    Used only by the Codd three-valued-logic baseline and by the
    possible-worlds evaluator, where an unknown null ranges over the whole
    attribute domain when completions are enumerated.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "unknown"

    def __str__(self) -> str:
        return "ω"  # Codd's omega

    def __bool__(self) -> bool:
        return False

    def __hash__(self) -> int:
        return hash("unknown-null")

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, UnknownNull)


class NonexistentNull:
    """A "nonexistent" null: the value does not exist (Lien 1979).

    Used only by the Lien baseline.  A nonexistent value satisfies no
    relational comparison (footnote 7 of the paper), exactly like ``ni``.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "nonexistent"

    def __str__(self) -> str:
        return "⊥"  # bottom

    def __bool__(self) -> bool:
        return False

    def __hash__(self) -> int:
        return hash("nonexistent-null")

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, NonexistentNull)


class MarkedNull:
    """A marked (labelled) null, as in Imielinski–Lipski v-tables.

    Two marked nulls with the same label denote the same unknown value, so
    they join with each other but evaluate to "maybe" against constants.
    The paper's Section 2 example — "Bob Smith's manager is a woman" —
    needs a marked null to tie the unknown manager's ``E#`` to Smith's
    ``MGR#``.  Marked nulls are supported by the possible-worlds baseline
    (``repro.worlds``), never by core x-relations.
    """

    __slots__ = ("label",)

    def __init__(self, label: str):
        if not isinstance(label, str) or not label:
            raise ValueError("MarkedNull label must be a non-empty string")
        self.label = label

    def __repr__(self) -> str:
        return f"MarkedNull({self.label!r})"

    def __str__(self) -> str:
        return f"@{self.label}"

    def __bool__(self) -> bool:
        return False

    def __hash__(self) -> int:
        return hash(("marked-null", self.label))

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, MarkedNull) and other.label == self.label


#: All classes that the library recognises as "some kind of null".
NULL_TYPES = (NoInformationNull, UnknownNull, NonexistentNull, MarkedNull)


def is_null(value: Any) -> bool:
    """Return ``True`` when *value* is a null of any interpretation.

    ``None`` is accepted as an input spelling of the no-information null so
    that data loaded from CSV/JSON or typed by hand reads naturally; it is
    normalised to :data:`NI` by :func:`coerce_null` before storage.
    """
    return value is None or isinstance(value, NULL_TYPES)


def is_nonnull(value: Any) -> bool:
    """Return ``True`` when *value* is an ordinary (total) domain value."""
    return not is_null(value)


def is_ni(value: Any) -> bool:
    """Return ``True`` when *value* is the no-information null (or ``None``)."""
    return value is None or isinstance(value, NoInformationNull)


def coerce_null(value: Any) -> Any:
    """Normalise the input spelling of nulls.

    ``None`` becomes :data:`NI`; every other value (including the richer
    null objects used by baselines) is returned unchanged.
    """
    if value is None:
        return NI
    return value
