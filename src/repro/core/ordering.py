"""Utilities over the information quasi-order on tuples.

Section 3 establishes that "more informative" (Definition 3.1) is a
reflexive and transitive relation on the universe of tuples ``U*`` — a
quasi-order — and a partial order (indeed a meet semilattice) once
equivalent tuples are identified.  This module packages the order-theoretic
operations that the relation layer and the minimal-form reduction build on:

* finding the maximal / minimal elements of a collection of tuples,
* testing whether a collection is an antichain (no tuple subsumes another),
* computing the meet-closure of a set (used when studying the semilattice
  structure in tests),
* comparison helpers returning rich results for diagnostics.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from .tuples import XTuple, more_informative


def maximal_tuples(tuples: Iterable[XTuple]) -> List[XTuple]:
    """Return the maximal elements of *tuples* under the information order.

    Duplicates (equivalent tuples) are collapsed to a single representative.
    A tuple is kept when no *other* tuple in the input is strictly more
    informative than it.
    """
    unique: List[XTuple] = []
    seen: Set[XTuple] = set()
    for t in tuples:
        if t not in seen:
            unique.append(t)
            seen.add(t)
    result: List[XTuple] = []
    for candidate in unique:
        dominated = False
        for other in unique:
            if other is candidate or other == candidate:
                continue
            if other.more_informative_than(candidate):
                dominated = True
                break
        if not dominated:
            result.append(candidate)
    return result


def minimal_tuples(tuples: Iterable[XTuple]) -> List[XTuple]:
    """Return the minimal elements of *tuples* under the information order."""
    unique: List[XTuple] = []
    seen: Set[XTuple] = set()
    for t in tuples:
        if t not in seen:
            unique.append(t)
            seen.add(t)
    result: List[XTuple] = []
    for candidate in unique:
        dominates = False
        for other in unique:
            if other is candidate or other == candidate:
                continue
            if candidate.more_informative_than(other):
                dominates = True
                break
        if not dominates:
            result.append(candidate)
    return result


def is_antichain(tuples: Sequence[XTuple]) -> bool:
    """True when no tuple in the collection strictly subsumes another.

    Minimal representations of x-relations are exactly antichains without
    the null tuple (Definition 4.6).
    """
    items = list(tuples)
    for i, r in enumerate(items):
        for j, t in enumerate(items):
            if i == j:
                continue
            if r.more_informative_than(t) and r != t:
                return False
    return True


def subsumes_any(candidate: XTuple, tuples: Iterable[XTuple]) -> bool:
    """True when *candidate* is more informative than some tuple in *tuples*."""
    return any(candidate.more_informative_than(t) for t in tuples)


def subsumed_by_any(candidate: XTuple, tuples: Iterable[XTuple]) -> bool:
    """True when some tuple in *tuples* is more informative than *candidate*.

    This is exactly the membership test ``candidate ∈̂ R`` of
    Proposition 4.2, phrased on raw tuple collections.
    """
    return any(t.more_informative_than(candidate) for t in tuples)


def meet_closure(tuples: Sequence[XTuple], max_rounds: int = 32) -> List[XTuple]:
    """Close a finite set of tuples under pairwise meet.

    Because the meet of two tuples never introduces new attribute/value
    pairs, the closure is finite and the fixpoint is reached quickly; the
    *max_rounds* guard is purely defensive.  Used by tests that verify the
    semilattice structure of footnote 5.
    """
    closed: Set[XTuple] = set(tuples)
    for _ in range(max_rounds):
        additions: Set[XTuple] = set()
        items = list(closed)
        for i, r in enumerate(items):
            for t in items[i + 1:]:
                m = r.meet(t)
                if m not in closed:
                    additions.add(m)
        if not additions:
            break
        closed |= additions
    return sorted(closed, key=lambda t: (len(t), t.items()))


def compare(r: XTuple, t: XTuple) -> str:
    """Classify the order relationship between two tuples.

    Returns one of ``"equivalent"``, ``"more"`` (r strictly above t),
    ``"less"`` (r strictly below t) or ``"incomparable"``.
    """
    above = more_informative(r, t)
    below = more_informative(t, r)
    if above and below:
        return "equivalent"
    if above:
        return "more"
    if below:
        return "less"
    return "incomparable"


def chains(tuples: Sequence[XTuple]) -> List[Tuple[XTuple, XTuple]]:
    """Return every ordered pair ``(less, more)`` of strictly comparable tuples.

    Useful for diagnostics and for exercising transitivity in property
    tests.
    """
    pairs: List[Tuple[XTuple, XTuple]] = []
    for r in tuples:
        for t in tuples:
            if r == t:
                continue
            if t.more_informative_than(r):
                pairs.append((r, t))
    return pairs
