"""The generalised relational algebra over x-relations (Sections 5–7).

Every operator of Codd's complete relational algebra — selection,
Cartesian product, projection, union, difference — plus the derived
θ-joins, the equi-join on X, the information-preserving **union-join**
(outer join) and **division** are defined here for relations with nulls,
following the paper's definitions:

* ``R[A θ B]`` (5.1) and ``R[A θ k]`` (5.2): keep the rows that are total
  on the compared attributes and satisfy the comparison — the TRUE-only
  (lower-bound) discipline of Section 5;
* Cartesian product (5.3): tuple joins of non-null operand rows (operand
  schemas must be disjoint — rename first otherwise);
* θ-join (5.4): a selection over the product;
* join on X ``R1 (·X) R2``: tuple joins of X-total rows agreeing on X;
* union-join ``R1 (*X) R2``: the join plus the rows of either operand that
  do not participate — the paper's reading of the outer join;
* projection ``R[X]`` (5.5);
* division ``R (÷Y) S`` (6.1), with the equivalent image-set formulation
  (6.3)/(6.5) also implemented so the two can be cross-checked;
* the Z-image ``Z_R(y)`` (6.4).

All functions accept either a :class:`~repro.core.relation.Relation` or an
:class:`~repro.core.xrelation.XRelation` and return an
:class:`XRelation`; results are reduced to minimal form.  Union and
difference live in :mod:`repro.core.setops` and are re-exported here so
``repro.core.algebra`` exposes the complete algebra.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Union

from . import setops
from .errors import AlgebraError, AttributeNotFound
from .relation import Relation, RelationSchema
from .threevalued import compare
from .tuples import XTuple
from .xrelation import XRelation, as_xrelation

RelationLike = Union[Relation, XRelation]


def _rep(value: RelationLike) -> Relation:
    """The representation (minimal for XRelation input) behind *value*."""
    if isinstance(value, XRelation):
        return value.representation
    if isinstance(value, Relation):
        return value
    raise AlgebraError(f"expected a Relation or XRelation, got {type(value).__name__}")


def _wrap(schema: RelationSchema, rows: Iterable[XTuple]) -> XRelation:
    relation = Relation(schema, validate=False)
    relation._rows = set(rows)
    return XRelation(relation)


# ---------------------------------------------------------------------------
# Selection (5.1), (5.2) — row-level kernels first, relation wrappers below
# ---------------------------------------------------------------------------

def constant_predicate(attribute: str, op: str, constant: Any):
    """The row predicate of ``A θ k`` (5.2): TRUE iff the row is A-total
    and the comparison holds.  A null constant satisfies nothing — the
    comparison is ``ni`` on every row.  This is THE shared kernel for
    constant selections: :func:`select_constant_rows`, the streaming
    executor's :class:`repro.exec.Filter` nodes and the session's
    prepared fast path all evaluate through it, so the TRUE-only null
    discipline cannot diverge between execution paths."""
    from .nulls import is_ni
    if is_ni(constant):
        return lambda row: False

    def predicate(row: XTuple, _a=attribute, _op=op, _k=constant) -> bool:
        value = row._lookup.get(_a)  # _lookup stores only non-null bindings
        return value is not None and compare(value, _op, _k).is_true()

    return predicate


def select_constant_rows(rows: Iterable[XTuple], attribute: str, op: str, constant: Any) -> List[XTuple]:
    """The row-level kernel of ``R[A θ k]``: keep the rows that are
    A-total and satisfy the comparison (see :func:`constant_predicate`)."""
    predicate = constant_predicate(attribute, op, constant)
    return [r for r in rows if predicate(r)]


def select_predicate_rows(rows: Iterable[XTuple], predicate) -> List[XTuple]:
    """The row-level kernel of the generalised selection: keep the rows on
    which *predicate* evaluates to TRUE (a :class:`TruthValue` or bool)."""
    from .threevalued import truth_of
    return [r for r in rows if truth_of(predicate(r)).is_true()]


def rename_rows(rows: Iterable[XTuple], mapping) -> List[XTuple]:
    """The row-level kernel of :func:`rename` — one fresh tuple per row."""
    return [r.rename(mapping) for r in rows]


def select_constant(relation: RelationLike, attribute: str, op: str, constant: Any) -> XRelation:
    """``R[A θ k]`` (5.2): rows that are A-total and satisfy ``r[A] θ k``.

    The constant must be a nonnull domain value; comparing against the
    null symbol is meaningless under every interpretation the paper
    discusses and is rejected.
    """
    rep = _rep(relation)
    if attribute not in rep.schema:
        raise AttributeNotFound(attribute, rep.schema.attributes)
    from .nulls import is_null
    if is_null(constant):
        raise AlgebraError("selection constants must be nonnull domain values")
    rows = select_constant_rows(rep.tuples(), attribute, op, constant)
    schema = RelationSchema(
        rep.schema.attributes, rep.schema.domains(),
        name=f"{rep.name}[{attribute}{op}{constant!r}]",
    )
    return _wrap(schema, rows)


def select_attributes(relation: RelationLike, left: str, op: str, right: str) -> XRelation:
    """``R[A θ B]`` (5.1): rows that are A-total and B-total and satisfy ``r[A] θ r[B]``."""
    rep = _rep(relation)
    for attribute in (left, right):
        if attribute not in rep.schema:
            raise AttributeNotFound(attribute, rep.schema.attributes)
    rows = [
        r for r in rep.tuples()
        if r.is_total_on((left, right)) and compare(r[left], op, r[right]).is_true()
    ]
    schema = RelationSchema(
        rep.schema.attributes, rep.schema.domains(),
        name=f"{rep.name}[{left}{op}{right}]",
    )
    return _wrap(schema, rows)


def select_predicate(relation: RelationLike, predicate) -> XRelation:
    """Generalised selection by an arbitrary three-valued predicate.

    *predicate* is called with each row and must return a
    :class:`~repro.core.threevalued.TruthValue` (or a bool); only rows
    evaluating to TRUE are kept, in line with the lower-bound discipline.
    Used by the QUEL evaluator for compound ``where`` clauses.
    """
    rep = _rep(relation)
    rows = select_predicate_rows(rep.tuples(), predicate)
    schema = RelationSchema(
        rep.schema.attributes, rep.schema.domains(), name=f"{rep.name}[σ]"
    )
    return _wrap(schema, rows)


# ---------------------------------------------------------------------------
# Cartesian product (5.3) and joins (5.4)
# ---------------------------------------------------------------------------

def _check_disjoint(s1: RelationSchema, s2: RelationSchema) -> None:
    overlap = [a for a in s1.attributes if a in s2]
    if overlap:
        raise AlgebraError(
            f"Cartesian product requires disjoint attribute sets; "
            f"both operands declare {overlap} — rename one side first"
        )


def product(left: RelationLike, right: RelationLike) -> XRelation:
    """Cartesian product (5.3): tuple joins ``r1 ∨ r2`` of non-null operand rows.

    Null rows (rows consisting only of ``ni``) are excluded, per the
    definition; the operand attribute sets must be disjoint, so the tuple
    join always exists.
    """
    rep1, rep2 = _rep(left), _rep(right)
    _check_disjoint(rep1.schema, rep2.schema)
    schema = rep1.schema.union(rep2.schema, name=f"({rep1.name} × {rep2.name})")
    rows: List[XTuple] = []
    for r1 in rep1.tuples():
        if r1.is_null_tuple():
            continue
        for r2 in rep2.tuples():
            if r2.is_null_tuple():
                continue
            rows.append(r1.join(r2))
    return _wrap(schema, rows)


def theta_join(left: RelationLike, right: RelationLike, left_attr: str, op: str, right_attr: str) -> XRelation:
    """θ-join (5.4): ``R1[A θ B]R2 = (R1 × R2)[A θ B]``."""
    return select_attributes(product(left, right), left_attr, op, right_attr)


def join_on(left: RelationLike, right: RelationLike, on: Sequence[str]) -> XRelation:
    """Equi-join on X, ``R1 (·X) R2``: join X-total rows that agree on X.

    Unlike the product, the join columns are shared rather than repeated,
    so the operand schemas overlap exactly on X.
    """
    rep1, rep2 = _rep(left), _rep(right)
    on = tuple(on)
    if not on:
        raise AlgebraError("join_on requires at least one join attribute")
    for attribute in on:
        if attribute not in rep1.schema:
            raise AttributeNotFound(attribute, rep1.schema.attributes)
        if attribute not in rep2.schema:
            raise AttributeNotFound(attribute, rep2.schema.attributes)
    extra_overlap = [
        a for a in rep1.schema.attributes
        if a in rep2.schema and a not in on
    ]
    if extra_overlap:
        raise AlgebraError(
            f"operands share attributes {extra_overlap} outside the join set {list(on)}; "
            f"rename one side first"
        )
    schema = rep1.schema.union(rep2.schema, name=f"({rep1.name} ⋈{list(on)} {rep2.name})")
    # Hash-join via the storage layer's index: X-total rows of the right
    # operand land in the value buckets, rows null on X land in the
    # unindexed bucket — which the inner join ignores, since only X-total
    # rows participate by definition.
    from ..storage.index import HashIndex  # local import: storage builds on core
    index = HashIndex(on)
    for r2 in rep2.tuples():
        index.insert(r2)
    rows: List[XTuple] = []
    for r1 in rep1.tuples():
        if not r1.is_total_on(on):
            continue
        for r2 in index.lookup([r1[a] for a in on]):  # same X-value → joinable on X
            rows.append(r1.join(r2))
    return _wrap(schema, rows)


def union_join(left: RelationLike, right: RelationLike, on: Sequence[str]) -> XRelation:
    """Union-join (outer join) on X, ``R1 (*X) R2``.

    Definition: the equi-join on X **union** the rows of either operand
    (padded with nulls on the other side's attributes, which the XTuple
    convention does implicitly).  This is the information-preserving join
    of Section 5: rows that do not participate in the join are kept rather
    than lost.
    """
    rep1, rep2 = _rep(left), _rep(right)
    inner = join_on(rep1, rep2, on)
    schema = RelationSchema(
        inner.schema.attributes, inner.schema.domains(),
        name=f"({rep1.name} ∪⋈{list(on)} {rep2.name})",
    )
    rows = list(inner.rows()) + list(rep1.tuples()) + list(rep2.tuples())
    return _wrap(schema, rows)


# ---------------------------------------------------------------------------
# Projection (5.5)
# ---------------------------------------------------------------------------

def project(relation: RelationLike, attributes: Sequence[str]) -> XRelation:
    """Projection ``R[X]`` (5.5): restrict every row to X.

    The result may contain rows subsumed by others (and even null rows)
    even when the input was minimal — the paper notes this is where
    re-reduction to minimal form is needed, and :func:`_wrap` performs it.
    """
    rep = _rep(relation)
    attributes = tuple(attributes)
    rep.schema.require(attributes)
    schema = rep.schema.project(attributes, name=f"{rep.name}[{', '.join(attributes)}]")
    rows = [r.project(attributes) for r in rep.tuples()]
    return _wrap(schema, rows)


def rename(relation: RelationLike, mapping) -> XRelation:
    """Rename attributes (needed before products/joins of a relation with itself)."""
    rep = _rep(relation)
    schema = rep.schema.rename(mapping, name=f"{rep.name}ρ")
    rows = rename_rows(rep.tuples(), mapping)
    return _wrap(schema, rows)


# ---------------------------------------------------------------------------
# Union / difference re-exports (Section 4)
# ---------------------------------------------------------------------------

def union(left: RelationLike, right: RelationLike) -> XRelation:
    """Generalised union (4.6)."""
    return XRelation(setops.union(_rep(left), _rep(right)))


def difference(left: RelationLike, right: RelationLike) -> XRelation:
    """Generalised difference (4.8)."""
    return XRelation(setops.difference(_rep(left), _rep(right)))


def x_intersection(left: RelationLike, right: RelationLike) -> XRelation:
    """x-intersection (4.7)."""
    return XRelation(setops.x_intersection(_rep(left), _rep(right)))


# ---------------------------------------------------------------------------
# Images and division (Section 6)
# ---------------------------------------------------------------------------

def image_set(relation: RelationLike, y: Union[XTuple, dict], y_attrs: Sequence[str], z_attrs: Sequence[str]) -> XRelation:
    """The Z-image ``Z_R(y)`` of a Y-value y under R (6.4).

    ``Z_R(y) = {z | for some r ∈̂ R, r[Y] = y and r[Z] = z}``.  Following
    the x-membership reading, a row contributes iff it is more informative
    than ``y`` on Y (i.e. matches y's non-null values); its Z-projection is
    the contributed z.
    """
    rep = _rep(relation)
    y_tuple = y if isinstance(y, XTuple) else XTuple(y)
    y_attrs = tuple(y_attrs)
    z_attrs = tuple(z_attrs)
    rep.schema.require(y_attrs)
    rep.schema.require(z_attrs)
    schema = rep.schema.project(z_attrs, name=f"{rep.name}.image")
    wanted = y_tuple.project(y_attrs)
    rows = [
        r.project(z_attrs)
        for r in rep.tuples()
        if r.project(y_attrs).more_informative_than(wanted)
    ]
    return _wrap(schema, rows)


def divide(dividend: RelationLike, divisor: RelationLike, by: Sequence[str]) -> XRelation:
    """Division ``R (÷Y) S`` by the algebraic definition (6.2).

    ``R (÷Y) S = R_Y[Y] − ((R_Y[Y] × S) − R_Y)[Y]`` where ``R_Y`` is the
    set of Y-total rows of R.  Only Y-total rows contribute to the
    quotient; the divisor's scope must be disjoint from Y (the "only case
    of practical interest", per the paper) — the attributes of S are the
    ones the quotient candidates must cover.
    """
    rep_r, rep_s = _rep(dividend), _rep(divisor)
    by = tuple(by)
    rep_r.schema.require(by)
    overlap = [a for a in rep_s.scope() if a in by]
    if overlap:
        raise AlgebraError(
            f"division requires the divisor's scope to be disjoint from Y; shares {overlap}"
        )

    # R_Y: the Y-total rows of R, as a relation over R's schema.
    r_y = Relation(rep_r.schema, validate=False)
    r_y._rows = set(rep_r.total_rows(by))

    # R_Y[Y]
    quotient_candidates = project(r_y, by)

    # (R_Y[Y] × S): pair every candidate with every divisor row.
    divisor_scope = rep_s.scope()
    if not divisor_scope:
        # Dividing by an (equivalent-to-)empty divisor: every Y-total
        # candidate trivially qualifies.
        return quotient_candidates
    shared = [a for a in divisor_scope if a in rep_r.schema.attributes]
    if set(shared) != set(divisor_scope):
        missing = [a for a in divisor_scope if a not in rep_r.schema.attributes]
        raise AlgebraError(f"divisor attributes {missing} do not appear in the dividend")
    pairs = product(quotient_candidates, project(rep_s, divisor_scope)) \
        if not shared else _pairing_product(quotient_candidates, project(rep_s, divisor_scope))

    # ((R_Y[Y] × S) − R_Y)[Y]: the candidates missing at least one divisor row.
    missing_pairs = XRelation(setops.difference(pairs.representation, r_y))
    disqualified = project(missing_pairs, by)

    # R_Y[Y] − disqualified
    return XRelation(setops.difference(quotient_candidates.representation, disqualified.representation))


def _pairing_product(left: XRelation, right: XRelation) -> XRelation:
    """Cartesian product that tolerates overlapping schemas by construction.

    In the division formula the candidate set (over Y) and the divisor
    (over Z) always have disjoint *scopes*, but their declared schemas may
    overlap textually after projections; this helper pairs the joinable
    rows.  The right operand is hashed on the textually-shared attributes
    with the :class:`~repro.storage.index.HashIndex` null-bucket protocol:
    a left row total on the shared attributes can only join the exact
    matches plus the null bucket (rows null somewhere on the shared set),
    so the disagreeing pairs are never visited.
    """
    schema = left.schema.union(right.schema, name=f"({left.name} × {right.name})")
    shared = tuple(a for a in left.schema.attributes if a in right.schema)
    rows: List[XTuple] = []
    if not shared:
        # Disjoint schemas: every non-null pair is joinable.
        right_rows = [r2 for r2 in right.rows() if not r2.is_null_tuple()]
        for r1 in left.rows():
            if r1.is_null_tuple():
                continue
            for r2 in right_rows:
                rows.append(r1.join(r2))
        return _wrap(schema, rows)

    from itertools import chain

    from ..storage.index import HashIndex  # local import: storage builds on core
    index = HashIndex(shared)
    all_right: Optional[List[XTuple]] = None
    for r2 in right.rows():
        if not r2.is_null_tuple():
            index.insert(r2)
    for r1 in left.rows():
        if r1.is_null_tuple():
            continue
        if r1.is_total_on(shared):
            exact, null_bucket = index.probe([r1[a] for a in shared])
            candidates: Iterable[XTuple] = chain(exact, null_bucket)
        else:
            if all_right is None:
                all_right = [r2 for r2 in right.rows() if not r2.is_null_tuple()]
            candidates = all_right
        for r2 in candidates:
            if r1.joinable_with(r2):
                rows.append(r1.join(r2))
    return _wrap(schema, rows)


def divide_by_images(dividend: RelationLike, divisor: RelationLike, by: Sequence[str]) -> XRelation:
    """Division by the image-set characterisation (6.5).

    ``R (÷Y) S = {y | y is Y-total and S ⊑ Z_R(y)}`` where Z is the scope
    of the divisor.  Equivalent to :func:`divide`; both are exercised by
    the tests and by benchmark E6 to confirm they agree.
    """
    rep_r, rep_s = _rep(dividend), _rep(divisor)
    by = tuple(by)
    rep_r.schema.require(by)
    divisor_scope = rep_s.scope()
    divisor_x = as_xrelation(rep_s) if divisor_scope else XRelation(rep_s)

    candidates = {r.project(by) for r in rep_r.total_rows(by)}
    schema = rep_r.schema.project(by, name=f"({rep_r.name} ÷ {rep_s.name})")
    if not divisor_scope:
        return _wrap(schema, candidates)
    rows: List[XTuple] = []
    for y in candidates:
        image = image_set(rep_r, y, by, divisor_scope)
        if image.contains(divisor_x):
            rows.append(y)
    return _wrap(schema, rows)
