"""Relations with null values (Section 3) and their schemas.

A relation ``R(W)`` is a set of W-values.  In this library a
:class:`Relation` couples a :class:`RelationSchema` — an ordered list of
attributes with (optionally) their domains — with a set of
:class:`~repro.core.tuples.XTuple` rows.  Because :class:`XTuple` already
treats unnamed attributes as ``ni``, a relation happily stores rows that
bind only part of its schema; this is what makes the Table I / Table II
schema-evolution example of Section 2 work without touching the data.

The relation layer provides:

* **subsumption** ``R1 ⊒ R2`` (Definition 4.1) and **information-wise
  equivalence** ``R1 ≅ R2`` (Definition 4.2);
* **x-membership** ``t ∈̂ R`` (Definition 4.5 / Proposition 4.2);
* the **minimal representation** (Definition 4.6) and **scope**
  (Definition 4.7);
* classification helpers (total relation, Y-total rows) used by the
  algebra and the division operator.

The set-algebraic operators live in :mod:`repro.core.setops`; the
equivalence-class view lives in :mod:`repro.core.xrelation`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from .domains import ANY, Domain
from .engine.dominance import DominanceIndex, bulk_reduce
from .errors import AttributeNotFound, SchemaError
from .nulls import NI, is_ni
from .tuples import XTuple


RowLike = Union[XTuple, Mapping[str, Any], Sequence[Any]]


class RelationSchema:
    """An ordered attribute list with optional domain declarations.

    Parameters
    ----------
    attributes:
        Attribute names in display order.  Names must be unique.
    domains:
        Optional mapping from attribute name to :class:`Domain`.  Missing
        attributes default to the unconstrained domain.
    name:
        Optional relation name, used for printing and by the catalog.
    """

    __slots__ = ("name", "_attributes", "_index", "_domains")

    def __init__(
        self,
        attributes: Sequence[str],
        domains: Optional[Mapping[str, Domain]] = None,
        name: str = "R",
    ):
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a relation schema needs at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attribute names in schema: {attrs}")
        for attribute in attrs:
            if not isinstance(attribute, str) or not attribute:
                raise SchemaError(f"attribute names must be non-empty strings, got {attribute!r}")
        self.name = name
        self._attributes = attrs
        self._index = {attribute: i for i, attribute in enumerate(attrs)}
        self._domains: Dict[str, Domain] = dict(domains or {})
        for attribute in self._domains:
            if attribute not in self._index:
                raise SchemaError(f"domain declared for unknown attribute {attribute!r}")

    # -- accessors -----------------------------------------------------------
    @property
    def attributes(self) -> Tuple[str, ...]:
        return self._attributes

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._index

    def position(self, attribute: str) -> int:
        try:
            return self._index[attribute]
        except KeyError:
            raise AttributeNotFound(attribute, self._attributes) from None

    def domain(self, attribute: str) -> Domain:
        if attribute not in self._index:
            raise AttributeNotFound(attribute, self._attributes)
        return self._domains.get(attribute, ANY)

    def domains(self) -> Dict[str, Domain]:
        return {attribute: self.domain(attribute) for attribute in self._attributes}

    def require(self, attributes: Iterable[str]) -> None:
        """Raise :class:`AttributeNotFound` unless every attribute is declared."""
        for attribute in attributes:
            if attribute not in self._index:
                raise AttributeNotFound(attribute, self._attributes)

    # -- derivation ------------------------------------------------------------
    def project(self, attributes: Sequence[str], name: Optional[str] = None) -> "RelationSchema":
        """A schema restricted to *attributes* (kept in the order given)."""
        self.require(attributes)
        return RelationSchema(
            tuple(attributes),
            {a: self._domains[a] for a in attributes if a in self._domains},
            name=name or self.name,
        )

    def extend(
        self,
        attributes: Sequence[str],
        domains: Optional[Mapping[str, Domain]] = None,
        name: Optional[str] = None,
    ) -> "RelationSchema":
        """A schema with new attributes appended (schema evolution, Sec. 2)."""
        merged_domains = dict(self._domains)
        if domains:
            merged_domains.update(domains)
        return RelationSchema(
            self._attributes + tuple(a for a in attributes if a not in self._index),
            merged_domains,
            name=name or self.name,
        )

    def union(self, other: "RelationSchema", name: Optional[str] = None) -> "RelationSchema":
        """The attribute union of two schemas (used by product / union-join)."""
        extra = tuple(a for a in other._attributes if a not in self._index)
        merged_domains = dict(self._domains)
        for a in extra:
            if a in other._domains:
                merged_domains[a] = other._domains[a]
        return RelationSchema(self._attributes + extra, merged_domains, name=name or self.name)

    def rename(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "RelationSchema":
        """A schema with attributes renamed according to *mapping*."""
        new_attrs = tuple(mapping.get(a, a) for a in self._attributes)
        new_domains = {mapping.get(a, a): d for a, d in self._domains.items()}
        return RelationSchema(new_attrs, new_domains, name=name or self.name)

    # -- equality / printing ----------------------------------------------------
    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def same_attributes(self, other: "RelationSchema") -> bool:
        """Union compatibility in the classical sense: same attribute *set*."""
        return set(self._attributes) == set(other._attributes)

    def __repr__(self) -> str:
        return f"RelationSchema({self.name!r}, {list(self._attributes)})"


class Relation:
    """A relation with null values: a set of tuples over a schema.

    The rows are stored as a set of canonical :class:`XTuple` objects, so
    duplicate rows (and rows equivalent to each other) collapse
    automatically — relations are sets, exactly as in the paper.

    A :class:`Relation` is *mutable* through :meth:`add` / :meth:`discard`
    (that is what the storage layer builds on), but every algebraic
    operation returns a fresh relation.
    """

    def __init__(
        self,
        schema: Union[RelationSchema, Sequence[str]],
        rows: Iterable[RowLike] = (),
        name: Optional[str] = None,
        validate: bool = True,
    ):
        if isinstance(schema, RelationSchema):
            self.schema = schema if name is None else RelationSchema(
                schema.attributes, schema.domains(), name=name
            )
        else:
            self.schema = RelationSchema(tuple(schema), name=name or "R")
        self._rows: Set[XTuple] = set()
        self._validate = validate
        # Lazily-built dominance index over the current rows; see
        # _dominance_index().  Invalidated by every mutation (the version
        # counter) and by wholesale rebinding of _rows (the identity and
        # length checks in _fresh_dominance).
        self._version = 0
        self._dominance: Optional[Tuple[Set[XTuple], int, int, DominanceIndex]] = None
        for row in rows:
            self.add(row)

    # -- constructors -------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        attributes: Sequence[str],
        rows: Iterable[Sequence[Any]],
        name: str = "R",
        domains: Optional[Mapping[str, Domain]] = None,
    ) -> "Relation":
        """Build a relation from positional rows (the way the paper draws tables)."""
        schema = RelationSchema(attributes, domains, name=name)
        return cls(schema, rows, name=name)

    @classmethod
    def empty(cls, attributes: Sequence[str], name: str = "R") -> "Relation":
        return cls(RelationSchema(attributes, name=name))

    # -- row conversion --------------------------------------------------------------
    def _coerce_row(self, row: RowLike) -> XTuple:
        return self._coerce_rows((row,))[0]

    def _coerce_rows(self, rows: Iterable[RowLike]) -> List[XTuple]:
        """Coerce and validate a batch of rows (the one coercion implementation).

        :meth:`_coerce_row` delegates here with a singleton batch.  The
        schema width, attribute table and the (usually empty) set of
        declared domains are bound once for the whole batch, so loading
        n rows costs n tuple constructions plus one validation pass —
        the entry point of the storage layer's bulk-mutation fast path.
        """
        attributes = self.schema.attributes
        width = len(attributes)
        known = self.schema._index
        declared = self.schema._domains if self._validate else {}
        validate = self._validate
        from_values = XTuple.from_values
        out: List[XTuple] = []
        for row in rows:
            if isinstance(row, XTuple):
                candidate = row
            elif isinstance(row, Mapping):
                candidate = XTuple(row)
            else:
                values = tuple(row)
                if len(values) != width:
                    raise SchemaError(
                        f"row has {len(values)} values but schema {self.schema.name} "
                        f"has {len(self.schema)} attributes"
                    )
                candidate = from_values(attributes, values)
            if validate:
                if declared:
                    for attribute in candidate.attributes:
                        if attribute not in known:
                            raise AttributeNotFound(attribute, attributes)
                        domain = declared.get(attribute)
                        if domain is not None:
                            domain.validate(candidate[attribute], attribute)
                elif not candidate._lookup.keys() <= known.keys():
                    for attribute in candidate.attributes:
                        if attribute not in known:
                            raise AttributeNotFound(attribute, attributes)
            out.append(candidate)
        return out

    # -- mutation ------------------------------------------------------------------------
    def add(self, row: RowLike) -> XTuple:
        """Insert a row (given as an XTuple, mapping or positional sequence)."""
        t = self._coerce_row(row)
        self._rows.add(t)
        self._version += 1
        return t

    def add_all(self, rows: Iterable[RowLike]) -> None:
        for row in rows:
            self.add(row)

    def discard(self, row: RowLike) -> bool:
        """Remove a row if present; returns whether a row was removed."""
        t = self._coerce_row(row)
        if t in self._rows:
            self._rows.remove(t)
            self._version += 1
            return True
        return False

    def clear(self) -> None:
        self._rows.clear()
        self._version += 1

    # -- basic container behaviour ----------------------------------------------------------
    @property
    def attributes(self) -> Tuple[str, ...]:
        return self.schema.attributes

    @property
    def name(self) -> str:
        return self.schema.name

    def tuples(self) -> Set[XTuple]:
        """The underlying set of rows (a copy is *not* made; do not mutate)."""
        return self._rows

    def __iter__(self) -> Iterator[XTuple]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __contains__(self, row: RowLike) -> bool:
        """Exact (equivalence-class) membership of a row — *not* x-membership."""
        try:
            t = self._coerce_row(row)
        except (SchemaError, AttributeNotFound):
            return False
        return t in self._rows

    def copy(self, name: Optional[str] = None) -> "Relation":
        out = Relation(self.schema, name=name or self.schema.name, validate=False)
        out._rows = set(self._rows)
        return out

    def with_schema(self, schema: RelationSchema) -> "Relation":
        """Re-house the same rows under a (typically wider) schema.

        This is the Section 2 schema-evolution operation: the rows are
        untouched, only the attribute universe changes, and the result is
        information-wise equivalent to the original.
        """
        out = Relation(schema, validate=False)
        out._rows = set(self._rows)
        return out

    # -- x-membership and subsumption (Section 4) ------------------------------------------------
    def _fresh_dominance(self) -> Optional[DominanceIndex]:
        """The cached dominance index, or ``None`` when stale/absent.

        Freshness requires the same row-set object (wholesale rebinding of
        ``_rows`` is the internal fast-construction idiom), the same
        mutation version (:meth:`add` / :meth:`discard` / :meth:`clear`
        bump it), and — belt and braces against direct in-place edits of
        the set — the same length.
        """
        cached = self._dominance
        if (
            cached is not None
            and cached[0] is self._rows
            and cached[1] == self._version
            and cached[2] == len(self._rows)
        ):
            return cached[3]
        return None

    def _dominance_index(self) -> DominanceIndex:
        """The dominance engine's index over the current rows, built lazily."""
        index = self._fresh_dominance()
        if index is None:
            index = DominanceIndex(self._rows)
            self._dominance = (self._rows, self._version, len(self._rows), index)
        return index

    def x_contains(self, row: RowLike) -> bool:
        """Proposition 4.2: ``t ∈̂ R`` iff some row of R is more informative than t.

        Uses the cached dominance index when one is already built (a probe
        is a handful of dict lookups); otherwise a single linear scan — a
        one-off probe cannot beat O(n) anyway, so the index is only built
        by the batch operations (:meth:`subsumes`, :meth:`equivalent_to`).
        """
        t = row if isinstance(row, XTuple) else self._coerce_row(row)
        index = self._fresh_dominance()
        if index is not None:
            return index.has_dominator(t)
        return any(r.more_informative_than(t) for r in self._rows)

    def subsumes(self, other: "Relation") -> bool:
        """Definition 4.1: every non-null row of *other* is x-contained in *self*.

        Batch form: *self* is indexed once by the dominance engine, then
        every row of *other* is a signature-superset probe, exiting early
        on the first miss.
        """
        if not other._rows:
            return True
        index = self._dominance_index()
        for t in other._rows:
            if t.is_null_tuple():
                continue
            if not index.has_dominator(t):
                return False
        return True

    def equivalent_to(self, other: "Relation") -> bool:
        """Definition 4.2: mutual subsumption."""
        return self.subsumes(other) and other.subsumes(self)

    def properly_subsumes(self, other: "Relation") -> bool:
        """Strict subsumption: subsumes but is not equivalent."""
        return self.subsumes(other) and not other.subsumes(self)

    # -- classification -----------------------------------------------------------------------------
    def is_total(self) -> bool:
        """True when every row is total on the whole schema (a Codd relation)."""
        return all(t.is_total_on(self.schema.attributes) for t in self._rows)

    def total_rows(self, attributes: Optional[Iterable[str]] = None) -> List[XTuple]:
        """The rows that are total on *attributes* (default: the full schema).

        ``R_Y`` in the paper's division definition (Section 6) is
        ``total_rows(Y)``.
        """
        attrs = tuple(attributes) if attributes is not None else self.schema.attributes
        return [t for t in self._rows if t.is_total_on(attrs)]

    def null_fraction(self) -> float:
        """Fraction of cells (over the full schema) holding ``ni``.

        A convenience statistic used by the benchmark workloads.
        """
        total_cells = len(self._rows) * len(self.schema)
        if total_cells == 0:
            return 0.0
        null_cells = sum(
            1 for t in self._rows for a in self.schema.attributes if is_ni(t[a])
        )
        return null_cells / total_cells

    # -- minimal representation and scope (Definitions 4.6, 4.7) -----------------------------------------
    def is_minimal(self) -> bool:
        """True when no row could be dropped without changing the x-relation.

        Reduction via the dominance engine drops exactly the null tuple
        and the subsumed rows, so the relation is minimal iff reduction
        keeps everything.
        """
        return len(bulk_reduce(self._rows)) == len(self._rows)

    def minimal(self, name: Optional[str] = None) -> "Relation":
        """The minimal representation: drop null rows and subsumed rows."""
        from .minimal import reduce_rows  # local import to avoid a cycle

        out = Relation(self.schema, name=name or self.schema.name, validate=False)
        out._rows = set(reduce_rows(self._rows))
        return out

    def scope(self) -> Tuple[str, ...]:
        """Definition 4.7: the smallest attribute set able to represent R.

        An attribute belongs to the scope iff some row is non-null on it.
        The result preserves schema order.
        """
        used: Set[str] = set()
        for t in self._rows:
            used.update(t.attributes)
        return tuple(a for a in self.schema.attributes if a in used)

    def projected_to_scope(self) -> "Relation":
        """A copy of the relation whose schema is exactly its scope."""
        scope = self.scope()
        if not scope:
            # Degenerate case: only null tuples.  Keep one attribute so the
            # schema stays legal; the relation is equivalent to the empty one.
            scope = self.schema.attributes[:1]
        out = Relation(self.schema.project(scope), validate=False)
        out._rows = {t.project(scope) for t in self._rows}
        return out

    # -- equality and printing -----------------------------------------------------------------------------------
    def __eq__(self, other: Any) -> bool:
        """Set equality of rows over the same attribute set.

        Note this is *representation* equality; use :meth:`equivalent_to`
        for the paper's information-wise equality of x-relations.
        """
        if not isinstance(other, Relation):
            return NotImplemented
        return set(self.schema.attributes) == set(other.schema.attributes) and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((frozenset(self.schema.attributes), frozenset(self._rows)))

    def sorted_rows(self) -> List[XTuple]:
        """Rows in a deterministic order (for printing and test assertions)."""
        def key(t: XTuple):
            return tuple(
                (0, "") if is_ni(t[a]) else (1, repr(t[a])) for a in self.schema.attributes
            )
        return sorted(self._rows, key=key)

    def to_table(self) -> str:
        """Render the relation in the paper's tabular style, with ``-`` for nulls."""
        headers = list(self.schema.attributes)
        rows = [[str(t[a]) for a in headers] for t in self.sorted_rows()]
        widths = [len(h) for h in headers]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"{self.schema.name}(" + ", ".join(headers) + ")"]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Relation({self.schema.name!r}, attributes={list(self.schema.attributes)}, rows={len(self._rows)})"
