"""JSON round-trips for relations and whole databases.

JSON has a natural null, so the mapping is direct: ``ni`` ↔ ``null``.
Rows are serialised as objects keyed by attribute name with null-valued
attributes omitted (they are information-free), which keeps files compact
and round-trips exactly through the canonical :class:`XTuple` form.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, TextIO, Union

from ..core.nulls import is_ni
from ..core.relation import Relation, RelationSchema
from ..core.tuples import XTuple


def relation_to_dict(relation: Relation) -> Dict[str, Any]:
    """A JSON-ready dict describing the relation."""
    return {
        "name": relation.schema.name,
        "attributes": list(relation.schema.attributes),
        "rows": [
            {a: row[a] for a in relation.schema.attributes if not is_ni(row[a])}
            for row in relation.sorted_rows()
        ],
    }


def relation_from_dict(payload: Mapping[str, Any]) -> Relation:
    """Rebuild a relation from :func:`relation_to_dict` output."""
    try:
        attributes = tuple(payload["attributes"])
        rows = payload["rows"]
    except KeyError as missing:
        raise ValueError(f"malformed relation payload: missing key {missing}") from None
    schema = RelationSchema(attributes, name=payload.get("name", "R"))
    relation = Relation(schema, validate=False)
    for row in rows:
        unknown = [a for a in row if a not in schema]
        if unknown:
            raise ValueError(f"row mentions attributes {unknown} not in the schema")
        relation.add(XTuple(row))
    return relation


def write_json(relation: Relation, destination: Union[str, TextIO], indent: int = 2) -> None:
    """Write a relation to a JSON file or file-like object."""
    payload = relation_to_dict(relation)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(payload, handle, indent=indent)
    else:
        json.dump(payload, destination, indent=indent)


def read_json(source: Union[str, TextIO]) -> Relation:
    """Read a relation from JSON written by :func:`write_json`."""
    if isinstance(source, str):
        with open(source) as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    return relation_from_dict(payload)


def read_json_into(database, table_name: str, source: Union[str, TextIO], replace: bool = False) -> int:
    """Atomically import a JSON relation payload into an existing table.

    Mirrors :func:`repro.io.csvio.read_csv_into`: the whole payload is
    parsed and schema-checked first, then loaded through the atomic bulk
    paths (:meth:`Table.load` with *replace*, otherwise
    :meth:`Database.insert_many` with foreign-key checks), so a malformed
    row or constraint violation anywhere in the file leaves the table
    untouched.  Returns the number of imported rows.
    """
    if isinstance(source, str):
        with open(source) as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    table = database.table(table_name)
    try:
        rows = payload["rows"]
    except (TypeError, KeyError):
        raise ValueError("malformed relation payload: missing key 'rows'") from None
    staged: List[XTuple] = []
    for row in rows:
        unknown = [a for a in row if a not in table.schema]
        if unknown:
            raise ValueError(f"row mentions attributes {unknown} not in the schema")
        staged.append(XTuple(row))
    if replace:
        table.load(staged)
    else:
        database.insert_many(table_name, staged)
    return len(staged)


def database_to_dict(database) -> Dict[str, Any]:
    """Serialise every table of a :class:`repro.storage.Database`."""
    return {
        "name": database.name,
        "tables": [relation_to_dict(database[name]) for name in database],
    }


def database_from_dict(payload: Mapping[str, Any]):
    """Rebuild a :class:`repro.storage.Database` from :func:`database_to_dict` output."""
    from ..storage.database import Database

    database = Database(payload.get("name", "db"))
    for table_payload in payload.get("tables", []):
        relation = relation_from_dict(table_payload)
        table = database.create_table(relation.schema.name, relation.schema.attributes)
        table.insert_many(list(relation.tuples()))
    return database
