"""CSV round-trips for relations with null values.

The no-information null needs an explicit, unambiguous spelling in flat
files; following the paper's tables the default marker is ``-`` (and the
empty string is also read as null).  Values are written as text; on
reading, an optional per-attribute type map (or automatic int/float
detection) restores numbers.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Sequence, TextIO, Union

from ..core.nulls import NI, is_ni
from ..core.relation import Relation, RelationSchema


DEFAULT_NULL_MARKER = "-"


def _parse_cell(text: str, parser: Optional[Callable[[str], Any]], null_markers: Sequence[str]) -> Any:
    if text in null_markers:
        return NI
    if parser is not None:
        return parser(text)
    # Automatic numeric detection keeps the paper's numeric columns numeric.
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def write_csv(
    relation: Relation,
    destination: Union[str, TextIO],
    null_marker: str = DEFAULT_NULL_MARKER,
) -> None:
    """Write *relation* to a CSV file or file-like object."""

    def _write(handle: TextIO) -> None:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.attributes)
        for row in relation.sorted_rows():
            writer.writerow([
                null_marker if is_ni(row[a]) else row[a] for a in relation.schema.attributes
            ])

    if isinstance(destination, str):
        with open(destination, "w", newline="") as handle:
            _write(handle)
    else:
        _write(destination)


def read_csv(
    source: Union[str, TextIO],
    name: str = "R",
    types: Optional[Mapping[str, Callable[[str], Any]]] = None,
    null_markers: Sequence[str] = (DEFAULT_NULL_MARKER, ""),
) -> Relation:
    """Read a relation from CSV written by :func:`write_csv` (or by hand)."""

    def _read(handle: TextIO) -> Relation:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError("empty CSV input: no header row") from None
        schema = RelationSchema(tuple(header), name=name)
        relation = Relation(schema, validate=False)
        type_map = dict(types or {})
        for line in reader:
            if not line:
                continue
            values = [
                _parse_cell(cell, type_map.get(attribute), null_markers)
                for attribute, cell in zip(header, line)
            ]
            relation.add(values)
        return relation

    if isinstance(source, str):
        with open(source, newline="") as handle:
            return _read(handle)
    return _read(source)


def to_csv_text(relation: Relation, null_marker: str = DEFAULT_NULL_MARKER) -> str:
    """Render a relation as CSV text (convenience for tests and examples)."""
    buffer = io.StringIO()
    write_csv(relation, buffer, null_marker=null_marker)
    return buffer.getvalue()


def from_csv_text(
    text: str,
    name: str = "R",
    types: Optional[Mapping[str, Callable[[str], Any]]] = None,
    null_markers: Sequence[str] = (DEFAULT_NULL_MARKER, ""),
) -> Relation:
    """Parse a relation from CSV text."""
    return read_csv(io.StringIO(text), name=name, types=types, null_markers=null_markers)
