"""CSV round-trips for relations with null values.

The no-information null needs an explicit, unambiguous spelling in flat
files; following the paper's tables the default marker is ``-`` (and the
empty string is also read as null).  Values are written as text; on
reading, an optional per-attribute type map (or automatic int/float
detection) restores numbers.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Sequence, TextIO, Union

from ..core.nulls import NI, is_ni
from ..core.relation import Relation, RelationSchema


DEFAULT_NULL_MARKER = "-"


def _parse_cell(text: str, parser: Optional[Callable[[str], Any]], null_markers: Sequence[str]) -> Any:
    if text in null_markers:
        return NI
    if parser is not None:
        return parser(text)
    # Automatic numeric detection keeps the paper's numeric columns numeric.
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def write_csv(
    relation: Relation,
    destination: Union[str, TextIO],
    null_marker: str = DEFAULT_NULL_MARKER,
) -> None:
    """Write *relation* to a CSV file or file-like object."""

    def _write(handle: TextIO) -> None:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.attributes)
        for row in relation.sorted_rows():
            writer.writerow([
                null_marker if is_ni(row[a]) else row[a] for a in relation.schema.attributes
            ])

    if isinstance(destination, str):
        with open(destination, "w", newline="") as handle:
            _write(handle)
    else:
        _write(destination)


def _parse_csv_rows(
    handle: TextIO,
    types: Optional[Mapping[str, Callable[[str], Any]]],
    null_markers: Sequence[str],
):
    """Parse a whole CSV stream up front: (header, fully-parsed rows).

    Parsing everything before anything is loaded is what makes the table
    import paths atomic — a malformed cell raises here, before a single
    row has touched any relation or table.
    """
    reader = csv.reader(handle)
    try:
        header = tuple(next(reader))
    except StopIteration:
        raise ValueError("empty CSV input: no header row") from None
    type_map = dict(types or {})
    rows = []
    for line in reader:
        if not line:
            continue
        rows.append([
            _parse_cell(cell, type_map.get(attribute), null_markers)
            for attribute, cell in zip(header, line)
        ])
    return header, rows


def read_csv(
    source: Union[str, TextIO],
    name: str = "R",
    types: Optional[Mapping[str, Callable[[str], Any]]] = None,
    null_markers: Sequence[str] = (DEFAULT_NULL_MARKER, ""),
) -> Relation:
    """Read a relation from CSV written by :func:`write_csv` (or by hand)."""

    def _read(handle: TextIO) -> Relation:
        header, rows = _parse_csv_rows(handle, types, null_markers)
        schema = RelationSchema(header, name=name)
        relation = Relation(schema, validate=False)
        relation.add_all(rows)
        return relation

    if isinstance(source, str):
        with open(source, newline="") as handle:
            return _read(handle)
    return _read(source)


def read_csv_into(
    database,
    table_name: str,
    source: Union[str, TextIO],
    types: Optional[Mapping[str, Callable[[str], Any]]] = None,
    null_markers: Sequence[str] = (DEFAULT_NULL_MARKER, ""),
    replace: bool = False,
) -> int:
    """Atomically import a CSV file into an existing database table.

    The whole file is parsed first, then the rows go through the storage
    layer's atomic bulk paths — :meth:`Table.load` when *replace* is
    true, :meth:`Database.insert_many` (foreign keys included) otherwise
    — so a malformed cell or a constraint violation anywhere in the file
    leaves the table exactly as it was: no stranded prefix of rows.
    The CSV header must be a subset of the table's attributes (missing
    attributes read as null).  Returns the number of imported rows.
    """

    def _rows(handle: TextIO):
        header, rows = _parse_csv_rows(handle, types, null_markers)
        table = database.table(table_name)
        table.schema.require(header)
        return [dict(zip(header, values)) for values in rows]

    if isinstance(source, str):
        with open(source, newline="") as handle:
            rows = _rows(handle)
    else:
        rows = _rows(source)
    if replace:
        database.table(table_name).load(rows)
    else:
        database.insert_many(table_name, rows)
    return len(rows)


def to_csv_text(relation: Relation, null_marker: str = DEFAULT_NULL_MARKER) -> str:
    """Render a relation as CSV text (convenience for tests and examples)."""
    buffer = io.StringIO()
    write_csv(relation, buffer, null_marker=null_marker)
    return buffer.getvalue()


def from_csv_text(
    text: str,
    name: str = "R",
    types: Optional[Mapping[str, Callable[[str], Any]]] = None,
    null_markers: Sequence[str] = (DEFAULT_NULL_MARKER, ""),
) -> Relation:
    """Parse a relation from CSV text."""
    return read_csv(io.StringIO(text), name=name, types=types, null_markers=null_markers)
