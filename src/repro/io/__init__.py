"""Flat-file round-trips (CSV, JSON) with explicit null markers."""

from .csvio import from_csv_text, read_csv, to_csv_text, write_csv
from .jsonio import (
    database_from_dict,
    database_to_dict,
    read_json,
    relation_from_dict,
    relation_to_dict,
    write_json,
)

__all__ = [
    "from_csv_text", "read_csv", "to_csv_text", "write_csv",
    "database_from_dict", "database_to_dict", "read_json",
    "relation_from_dict", "relation_to_dict", "write_json",
]
