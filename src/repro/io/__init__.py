"""Flat-file round-trips (CSV, JSON) with explicit null markers.

The ``*_into`` importers load files into existing database tables
through the storage layer's atomic bulk paths: the whole file is parsed
before any row is applied, so a malformed row mid-file can no longer
strand the rows before it.
"""

from .csvio import from_csv_text, read_csv, read_csv_into, to_csv_text, write_csv
from .jsonio import (
    database_from_dict,
    database_to_dict,
    read_json,
    read_json_into,
    relation_from_dict,
    relation_to_dict,
    write_json,
)

__all__ = [
    "from_csv_text", "read_csv", "read_csv_into", "to_csv_text", "write_csv",
    "database_from_dict", "database_to_dict", "read_json", "read_json_into",
    "relation_from_dict", "relation_to_dict", "write_json",
]
