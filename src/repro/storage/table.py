"""Tables: relations plus constraints, indexes and algebra-defined updates.

Section 7 of the paper defines database updates through the extended
algebra: "the result of adding a set of tuples to a relation is defined as
the union of the set with the relation; likewise deletion is defined by
set difference; a modification can be viewed as a deletion followed by an
addition."  :class:`Table` implements exactly this discipline:

* :meth:`insert` / :meth:`insert_many` — generalised union with the new
  rows, after constraint checks; the batch form is *atomic* (checks run
  up front, nothing is applied on failure) and amortises dominance- and
  hash-index maintenance through the engine's bulk entry points;
* :meth:`delete` / :meth:`delete_many` / :meth:`delete_where` —
  generalised difference; note that, per (4.8), deleting a row also
  removes every *less informative* row it subsumes, which is the
  behaviour the information ordering dictates;
* :meth:`update` — deletion followed by insertion;
* :meth:`load` — atomic checked replacement of the whole table, the bulk
  loader behind the workload builders;
* the Section 1 user expectation — after an insert, the new table
  x-contains the old one — holds by construction and is asserted in the
  tests.

A table may carry key / NOT NULL / FD / row constraints and any number of
hash indexes, which are maintained incrementally.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..core.engine.dominance import DominanceIndex
from ..core.errors import StorageError
from ..core.relation import Relation, RelationSchema, RowLike
from ..core.tuples import XTuple
from ..core.xrelation import XRelation
from ..constraints.keys import KeyConstraint, NotNullConstraint
from ..constraints.functional import FunctionalDependency
from ..constraints.schema_constraints import RowConstraint
from ..stats import TableStatistics
from .index import HashIndex


TableConstraint = Union[KeyConstraint, NotNullConstraint, FunctionalDependency, RowConstraint]


class Table:
    """A named, constrained, indexable relation living in a catalog."""

    def __init__(
        self,
        schema: Union[RelationSchema, Sequence[str]],
        constraints: Sequence[TableConstraint] = (),
        name: Optional[str] = None,
    ):
        if not isinstance(schema, RelationSchema):
            schema = RelationSchema(tuple(schema), name=name or "T")
        elif name is not None:
            schema = RelationSchema(schema.attributes, schema.domains(), name=name)
        self.relation = Relation(schema)
        self.constraints: List[TableConstraint] = list(constraints)
        self.indexes: Dict[str, HashIndex] = {}
        # Live dominance index over the stored rows, maintained by every
        # mutation path; powers x-membership probes and (4.8) deletion
        # without scanning the table.
        self.dominance = DominanceIndex()
        # Live statistics (row/distinct/null counts, signature histogram),
        # maintained through the same mutation paths; the cost-based
        # planner reads them instead of scanning the table per query.
        self.statistics = TableStatistics()
        # Physical-design epoch: bumped by every index change and every
        # explicit ANALYZE.  Sessions key their prepared-plan caches on
        # the database-wide sum, so a stale cached plan transparently
        # re-plans after the physical choices may have changed.
        self.ddl_epoch = 0
        # Write-ahead log, wired by the owning catalog when the database
        # has one attached (None otherwise).  Every mutation entry point
        # appends a logical record *before* applying, holding the log's
        # lock across append + apply so a background checkpoint can never
        # truncate a record whose state change has not landed yet.
        self._wal = None

    # -- write-ahead logging ------------------------------------------------------
    def _wal_lock(self):
        """The WAL's append-and-apply scope when one is attached, else a
        no-op context.  The scope holds the WAL lock (so the checkpoint
        worker never snapshots between a record and its state change) and
        issues any deferred group-commit fsync on the way out."""
        wal = self._wal
        return wal.commit_scope() if wal is not None else nullcontext()

    def _log(self, op: str, **fields) -> None:
        """Append one logical record for this table (no-op without a WAL,
        and during recovery replay)."""
        wal = self._wal
        if wal is not None and not wal.replaying:
            record = {"op": op, "table": self.name}
            record.update(fields)
            wal.append(record)

    # -- convenience accessors ----------------------------------------------------
    @property
    def name(self) -> str:
        return self.relation.schema.name

    @property
    def schema(self) -> RelationSchema:
        return self.relation.schema

    @property
    def attributes(self):
        return self.relation.schema.attributes

    def rows(self):
        return self.relation.tuples()

    def __len__(self) -> int:
        return len(self.relation)

    def __iter__(self):
        return iter(self.relation)

    def as_relation(self) -> Relation:
        return self.relation

    def as_xrelation(self) -> XRelation:
        return XRelation(self.relation)

    # -- constraints ----------------------------------------------------------------
    def add_constraint(self, constraint: TableConstraint, validate_existing: bool = True) -> None:
        if validate_existing:
            check = getattr(constraint, "check", None)
            if check is not None:
                check(self.relation)
        self.constraints.append(constraint)

    def _check_insert(self, row: XTuple, relation: Optional[Relation] = None) -> None:
        """Run every constraint's per-row insert guard against *relation*
        (default: this table's stored relation)."""
        against = self.relation if relation is None else relation
        for constraint in self.constraints:
            check_insert = getattr(constraint, "check_insert", None)
            if check_insert is not None:
                check_insert(against, row)

    def _check_bulk_insert(self, relation: Relation, candidates: Sequence[XTuple]) -> bool:
        """Run every constraint against a staged batch, before any mutation.

        Returns True when every constraint offered a ``check_bulk_insert``
        batch form (the amortised path, one pass over *relation* per
        constraint).  Returns False when some constraint only knows
        ``check_insert`` — the caller must then fall back to the
        sequential row-at-a-time simulation, which is the only way to give
        such a constraint the grows-as-you-insert view it expects.
        """
        batch_checks = []
        for constraint in self.constraints:
            check_bulk = getattr(constraint, "check_bulk_insert", None)
            if check_bulk is None:
                if getattr(constraint, "check_insert", None) is not None:
                    return False
                continue  # constraint guards nothing on insert
            batch_checks.append(check_bulk)
        for check_bulk in batch_checks:
            check_bulk(relation, candidates)
        return True

    def validate(self) -> None:
        """Re-check every constraint against the whole table."""
        for constraint in self.constraints:
            check = getattr(constraint, "check", None)
            if check is not None:
                check(self.relation)

    # -- indexes -----------------------------------------------------------------------
    def create_index(self, attributes: Sequence[str], name: Optional[str] = None) -> HashIndex:
        self.schema.require(attributes)
        index = HashIndex(attributes, name=name)
        if index.name in self.indexes:
            raise StorageError(f"index {index.name!r} already exists on table {self.name!r}")
        with self._wal_lock():
            self._log("create_index", name=index.name, attributes=index.attributes)
            index.rebuild(self.relation.tuples())
            self.indexes[index.name] = index
            self.ddl_epoch += 1
        return index

    def drop_index(self, name_or_attributes: Union[str, Sequence[str]]) -> None:
        """Drop an index by name, or by the attribute *set* it covers.

        Dropping by attributes is order-insensitive: an index declared on
        ``("B", "A")`` is found by ``drop_index(["A", "B"])``.
        """
        if isinstance(name_or_attributes, str):
            if name_or_attributes not in self.indexes:
                raise StorageError(
                    f"no index named {name_or_attributes!r} on table {self.name!r}"
                )
            doomed_name = name_or_attributes
        else:
            index = self.find_index(name_or_attributes)
            if index is None:
                raise StorageError(
                    f"no index on attributes {list(name_or_attributes)!r} "
                    f"on table {self.name!r}"
                )
            doomed_name = index.name
        with self._wal_lock():
            self._log("drop_index", name=doomed_name)
            del self.indexes[doomed_name]
            self.ddl_epoch += 1

    def find_index(self, attributes: Sequence[str]) -> Optional[HashIndex]:
        """The index covering exactly this attribute *set*, if any.

        Matching is order-insensitive — a hash index answers equality
        probes on every permutation of its key, the caller just has to
        permute the probe values into the index's declared order.
        """
        wanted = frozenset(attributes)
        if len(wanted) != len(tuple(attributes)):
            return None
        for index in self.indexes.values():
            if len(index.attributes) == len(wanted) and wanted == frozenset(index.attributes):
                return index
        return None

    def find_equality_index(self, attributes: Sequence[str]):
        """The physical choice for a set of equality-probed attributes.

        Returns ``(index, consumed)``: the :class:`HashIndex` to probe
        and the attribute subset it covers — the index matching the full
        attribute *set* when one exists, otherwise the first
        single-attribute index among them (the remaining equalities stay
        as ordinary filters).  ``(None, ())`` when nothing applies.  Both
        the cost-based planner's pushed selections and the session's
        prepared fast path make this choice through here, so they can
        never diverge on the access path for the same conjuncts.
        """
        wanted = tuple(attributes)
        if not wanted:
            return None, ()
        index = self.find_index(wanted)
        if index is not None:
            return index, wanted
        if len(wanted) > 1:
            for attribute in wanted:
                index = self.find_index([attribute])
                if index is not None:
                    return index, (attribute,)
        return None, ()

    def index_specs(self) -> Dict[str, tuple]:
        """The persistent indexes as ``{name: attribute tuple}`` — what
        snapshots carry so :meth:`Database.restore` can round-trip them."""
        return {name: index.attributes for name, index in self.indexes.items()}

    def lookup(self, attributes: Sequence[str], values: Sequence[Any]) -> List[XTuple]:
        """Equality lookup, via an index when one covers these attributes.

        Index matching is on the attribute *set*: an index declared on
        ``("B", "A")`` serves a lookup on ``("A", "B")``, with the probe
        values permuted into the index's key order.
        """
        wanted = tuple(attributes)
        index = self.find_index(wanted)
        if index is not None:
            bound = dict(zip(wanted, values))
            probe = [bound[a] for a in index.attributes]
            return sorted(index.lookup(probe), key=lambda r: r.items())
        matches = [
            r for r in self.relation.tuples()
            if all(r[a] == v for a, v in zip(wanted, values))
        ]
        return sorted(matches, key=lambda r: r.items())

    # -- updates (algebra-defined) ----------------------------------------------------------
    def insert(self, row: RowLike) -> XTuple:
        """Insert one row (generalised union with a singleton relation)."""
        candidate = self.relation._coerce_row(row)
        self._check_insert(candidate)
        with self._wal_lock():
            self._log("insert", rows=[candidate])
            is_new = candidate not in self.relation.tuples()
            self.relation.add(candidate)
            self.dominance.add(candidate)
            for index in self.indexes.values():
                index.insert(candidate)
            if is_new:
                self.statistics.add_row(candidate)
        return candidate

    def insert_many(self, rows: Iterable[RowLike], *, _coerced: bool = False) -> List[XTuple]:
        """Insert a batch of rows atomically (union with a staged relation).

        The batch is coerced and constraint-checked *up front*; only then
        are the rows applied, with one :meth:`DominanceIndex.bulk_add` /
        :meth:`HashIndex.bulk_add` per structure instead of per-row
        maintenance.  On any constraint failure the table is left exactly
        as it was — all-or-nothing, unlike a loop of :meth:`insert`, which
        would leave the rows preceding the offender behind.

        ``_coerced`` is internal: the :class:`~repro.storage.database.Database`
        facade passes rows it already ran through
        :meth:`Relation._coerce_rows` (for the foreign-key checks), so the
        batch is not coerced and validated twice.
        """
        candidates = list(rows) if _coerced else self.relation._coerce_rows(rows)
        if not candidates:
            return []
        fresh = self._stage_bulk_insert(self.relation.tuples(), candidates)
        with self._wal_lock():
            self._log("insert", rows=fresh)
            self._apply_bulk_add(fresh)
        return candidates

    def _stage_bulk_insert(
        self, stored: set, candidates: Sequence[XTuple]
    ) -> List[XTuple]:
        """Check a batch against *stored* without touching live state.

        Returns the de-duplicated genuinely-new rows to apply.  The batch
        path checks against *stored* in place (read-only).  When some
        constraint only knows ``check_insert``, the batch is simulated
        row-at-a-time against a scratch relation seeded with a *copy* of
        *stored* — the grows-as-you-insert view such a constraint expects
        — so a failure anywhere leaves the table untouched (and, with a
        WAL attached, unlogged)."""
        scratch = Relation(self.schema, validate=False)
        scratch._rows = stored
        if self._check_bulk_insert(scratch, candidates):
            return [c for c in dict.fromkeys(candidates) if c not in stored]
        grown = scratch._rows = set(stored)
        fresh: List[XTuple] = []
        for candidate in candidates:
            self._check_insert(candidate, scratch)
            if candidate not in grown:
                grown.add(candidate)
                fresh.append(candidate)
        return fresh

    def _apply_bulk_add(self, fresh: Sequence[XTuple]) -> None:
        """Add already-checked genuinely-new rows, one bulk update per
        structure — the inverse of :meth:`_apply_bulk_remove`."""
        self.relation.tuples().update(fresh)
        self.relation._version += 1
        self.dominance.bulk_add(fresh)
        for index in self.indexes.values():
            index.bulk_add(fresh)
        self.statistics.add_rows(fresh)

    def delete_many(
        self,
        rows: Iterable[RowLike],
        *,
        _coerced: bool = False,
        _doomed: Optional[set] = None,
    ) -> int:
        """Delete a batch of rows by generalised difference, in one pass.

        Per (4.8) each given row removes every stored row it subsumes; the
        doomed set is the union over the batch, collected from the live
        dominance index before anything is touched, then removed with one
        bulk update per structure.  Returns the number of rows removed.
        (``_coerced`` as in :meth:`insert_many`; ``_doomed`` lets the
        :class:`~repro.storage.database.Database` facade pass the closure
        it already probed for its foreign-key checks.)
        """
        targets = list(rows) if _coerced else self.relation._coerce_rows(rows)
        doomed = self.dominance.bulk_probe_dominated(targets) if _doomed is None else _doomed
        if not doomed:
            return 0
        with self._wal_lock():
            self._log("remove", rows=list(doomed))
            self._apply_bulk_remove(doomed)
        return len(doomed)

    def load(self, rows: Iterable[RowLike]) -> List[XTuple]:
        """Atomically replace the table's contents with *rows*.

        The bulk-load entry point: rows are coerced and checked against an
        empty table (so the batch only has to be consistent with itself),
        and the stored state — rows, dominance index, hash indexes — is
        swapped in wholesale on success.  On failure the current contents
        are untouched.
        """
        candidates = self.relation._coerce_rows(rows)
        scratch = Relation(self.schema, validate=False)
        if not self._check_bulk_insert(scratch, candidates):
            for candidate in candidates:
                self._check_insert(candidate, scratch)
                scratch._rows.add(candidate)
        self.reset_rows(candidates)
        return candidates

    def _remove_row(self, row: XTuple) -> None:
        """Remove one stored row from the relation and every index."""
        self.relation.discard(row)
        self.dominance.discard(row)
        for index in self.indexes.values():
            index.remove(row)
        self.statistics.remove_row(row)

    def _apply_bulk_remove(self, doomed: set) -> None:
        """Drop a set of *stored* rows with one bulk update per structure."""
        self.relation.tuples().difference_update(doomed)
        self.relation._version += 1
        self.dominance.bulk_discard(doomed)
        for index in self.indexes.values():
            index.bulk_discard(doomed)
        self.statistics.remove_rows(doomed)

    def delete(self, row: RowLike) -> int:
        """Delete by generalised difference with a singleton relation.

        Following (4.8), every stored row that the given row subsumes is
        removed — deleting ``(p1, s2)`` also removes ``(p1, -)`` if present,
        since the latter carries no information not carried by the former.
        The dominated rows come straight from the live dominance index
        (one probe per stored signature), so nothing is scanned or rebuilt.
        Returns the number of rows removed.
        """
        target = self.relation._coerce_row(row)
        doomed = self.dominance.probe_dominated(target)
        if not doomed:
            return 0
        with self._wal_lock():
            self._log("remove", rows=list(doomed))
            for victim in doomed:
                self._remove_row(victim)
        return len(doomed)

    def delete_where(self, predicate: Callable[[XTuple], bool]) -> int:
        """Delete every row satisfying a Python predicate (a convenience form).

        The matching rows come straight out of the stored set, so unlike
        :meth:`delete` no (4.8) subsumption closure applies; removal goes
        through the same bulk maintenance as :meth:`delete_many`.
        """
        doomed = {r for r in self.relation.tuples() if predicate(r)}
        if not doomed:
            return 0
        with self._wal_lock():
            # The matched row *set* is logged, never the predicate — replay
            # stays closed over plain data even for lambda deletes.
            self._log("remove", rows=list(doomed))
            self._apply_bulk_remove(doomed)
        return len(doomed)

    def update(self, old_row: RowLike, new_row: RowLike) -> XTuple:
        """Modification = deletion followed by addition (Section 7).

        A singleton :meth:`update_many` — one batch-coercion pass, the
        bulk (4.8) delete, the atomic bulk insert, and the post-state
        restore discipline that re-adds the *whole* removed closure on
        failure (not just the named row, which the old hand-rolled path
        would strand)."""
        return self.update_many([(old_row, new_row)])[0]

    def update_many(self, pairs: Iterable[tuple], *, _coerced: bool = False) -> List[XTuple]:
        """Apply a batch of ``(old_row, new_row)`` modifications atomically.

        Rides the same bulk machinery as :meth:`insert_many` /
        :meth:`delete_many`: both sides are batch-coerced up front, every
        old row must be present, and the new rows are constraint-checked
        against the *post-delete* state on a scratch relation — before
        anything (or any WAL record) is written.  Only a fully-validated
        modification is then applied: the (4.8) subsumption closure of
        the old rows comes out and the new rows go in, one bulk update
        per structure, under a single logical ``update`` log record.  On
        any check failure the table is left exactly as it was — no
        rollback pass, because nothing was touched.  Returns the inserted
        rows.  (``_coerced`` as in :meth:`insert_many`: the Database
        facade passes pairs it already coerced, so the batch is not
        validated twice.)
        """
        staged = [(old, new) for old, new in pairs]
        if _coerced:
            olds = [old for old, _ in staged]
            news = [new for _, new in staged]
        else:
            olds = self.relation._coerce_rows([old for old, _ in staged])
            news = self.relation._coerce_rows([new for _, new in staged])
        stored = self.relation.tuples()
        for old in olds:
            if old not in stored:
                raise StorageError(f"row {old!r} not present in table {self.name!r}")
        if not staged:
            return []
        doomed = self.dominance.bulk_probe_dominated(olds)
        survivors = stored - doomed
        fresh = self._stage_bulk_insert(survivors, news)
        with self._wal_lock():
            self._log("update", removed=list(doomed), rows=fresh)
            if doomed:
                self._apply_bulk_remove(doomed)
            self._apply_bulk_add(fresh)
        return news

    def truncate(self) -> None:
        with self._wal_lock():
            self._log("truncate")
            self.relation.clear()
            self.dominance.clear()
            for index in self.indexes.values():
                index.clear()
            self.statistics.clear()

    def reset_rows(
        self,
        rows: Iterable[XTuple],
        *,
        statistics: Optional[TableStatistics] = None,
    ) -> None:
        """Replace the stored rows wholesale and rebuild every index.

        The supported path for snapshot restore — it keeps the hash
        indexes and the live dominance index consistent with the new row
        set, rebuilding each through its bulk entry point (one partition
        pass per structure).  Constraints are *not* re-checked: the rows
        are trusted, coming from a snapshot of this very table.  For a
        checked bulk load from external rows use :meth:`load`.

        When *statistics* is given (a saved :class:`TableStatistics`,
        from a snapshot or checkpoint), the table's live statistics are
        restored from it — planner estimates and the staleness tracker
        round-trip exactly; otherwise they are re-derived from the rows.
        Logged as one logical ``load`` record (statistics included, so
        crash-recovery replay restores the same estimates and staleness
        the live path does), which is also how the compensating restores
        of a rolled-back transaction reach the log.
        """
        fresh = set(rows)
        with self._wal_lock():
            self._log("load", rows=list(fresh), statistics=statistics)
            self.relation._rows = fresh
            self.relation._version += 1
            self.relation._dominance = None
            self.dominance.rebuild(fresh)
            for index in self.indexes.values():
                index.rebuild(fresh)
            if statistics is not None:
                self.statistics.restore_from(statistics)
            else:
                self.statistics.analyze(fresh)

    # -- statistics --------------------------------------------------------------------------
    def analyze(self) -> TableStatistics:
        """Full-refresh the table's statistics from the stored rows.

        The incremental maintenance is exact, so this is a no-op on the
        counters when every mutation went through this table's methods;
        it resets the staleness tracker and repairs the statistics after
        any out-of-band mutation of the underlying relation.
        """
        with self._wal_lock():
            self._log("analyze")
            self.ddl_epoch += 1
            return self.statistics.analyze(self.relation.tuples())

    # -- x-membership ------------------------------------------------------------------------
    def x_contains(self, row: RowLike) -> bool:
        """Proposition 4.2 against the live dominance index: ``t ∈̂ table``."""
        t = row if isinstance(row, XTuple) else self.relation._coerce_row(row)
        return self.dominance.has_dominator(t)

    # -- presentation ------------------------------------------------------------------------------
    def to_table(self) -> str:
        return self.relation.to_table()

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, attributes={list(self.attributes)}, rows={len(self.relation)}, "
            f"constraints={len(self.constraints)}, indexes={list(self.indexes)})"
        )
