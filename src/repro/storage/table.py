"""Tables: relations plus constraints, indexes and algebra-defined updates.

Section 7 of the paper defines database updates through the extended
algebra: "the result of adding a set of tuples to a relation is defined as
the union of the set with the relation; likewise deletion is defined by
set difference; a modification can be viewed as a deletion followed by an
addition."  :class:`Table` implements exactly this discipline:

* :meth:`insert` / :meth:`insert_many` — generalised union with the new
  rows, after constraint checks;
* :meth:`delete` / :meth:`delete_where` — generalised difference; note
  that, per (4.8), deleting a row also removes every *less informative*
  row it subsumes, which is the behaviour the information ordering
  dictates;
* :meth:`update` — deletion followed by insertion;
* the Section 1 user expectation — after an insert, the new table
  x-contains the old one — holds by construction and is asserted in the
  tests.

A table may carry key / NOT NULL / FD / row constraints and any number of
hash indexes, which are maintained incrementally.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..core.engine.dominance import DominanceIndex
from ..core.errors import StorageError
from ..core.relation import Relation, RelationSchema, RowLike
from ..core.tuples import XTuple
from ..core.xrelation import XRelation
from ..constraints.keys import KeyConstraint, NotNullConstraint
from ..constraints.functional import FunctionalDependency
from ..constraints.schema_constraints import RowConstraint
from .index import HashIndex


TableConstraint = Union[KeyConstraint, NotNullConstraint, FunctionalDependency, RowConstraint]


class Table:
    """A named, constrained, indexable relation living in a catalog."""

    def __init__(
        self,
        schema: Union[RelationSchema, Sequence[str]],
        constraints: Sequence[TableConstraint] = (),
        name: Optional[str] = None,
    ):
        if not isinstance(schema, RelationSchema):
            schema = RelationSchema(tuple(schema), name=name or "T")
        elif name is not None:
            schema = RelationSchema(schema.attributes, schema.domains(), name=name)
        self.relation = Relation(schema)
        self.constraints: List[TableConstraint] = list(constraints)
        self.indexes: Dict[str, HashIndex] = {}
        # Live dominance index over the stored rows, maintained by every
        # mutation path; powers x-membership probes and (4.8) deletion
        # without scanning the table.
        self.dominance = DominanceIndex()

    # -- convenience accessors ----------------------------------------------------
    @property
    def name(self) -> str:
        return self.relation.schema.name

    @property
    def schema(self) -> RelationSchema:
        return self.relation.schema

    @property
    def attributes(self):
        return self.relation.schema.attributes

    def rows(self):
        return self.relation.tuples()

    def __len__(self) -> int:
        return len(self.relation)

    def __iter__(self):
        return iter(self.relation)

    def as_relation(self) -> Relation:
        return self.relation

    def as_xrelation(self) -> XRelation:
        return XRelation(self.relation)

    # -- constraints ----------------------------------------------------------------
    def add_constraint(self, constraint: TableConstraint, validate_existing: bool = True) -> None:
        if validate_existing:
            check = getattr(constraint, "check", None)
            if check is not None:
                check(self.relation)
        self.constraints.append(constraint)

    def _check_insert(self, row: XTuple) -> None:
        for constraint in self.constraints:
            check_insert = getattr(constraint, "check_insert", None)
            if check_insert is not None:
                check_insert(self.relation, row)

    def validate(self) -> None:
        """Re-check every constraint against the whole table."""
        for constraint in self.constraints:
            check = getattr(constraint, "check", None)
            if check is not None:
                check(self.relation)

    # -- indexes -----------------------------------------------------------------------
    def create_index(self, attributes: Sequence[str], name: Optional[str] = None) -> HashIndex:
        self.schema.require(attributes)
        index = HashIndex(attributes, name=name)
        if index.name in self.indexes:
            raise StorageError(f"index {index.name!r} already exists on table {self.name!r}")
        index.rebuild(self.relation.tuples())
        self.indexes[index.name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise StorageError(f"no index named {name!r} on table {self.name!r}")
        del self.indexes[name]

    def lookup(self, attributes: Sequence[str], values: Sequence[Any]) -> List[XTuple]:
        """Equality lookup, via an index when one exists on exactly these attributes."""
        wanted = tuple(attributes)
        for index in self.indexes.values():
            if index.attributes == wanted:
                return sorted(index.lookup(values), key=lambda r: r.items())
        matches = [
            r for r in self.relation.tuples()
            if all(r[a] == v for a, v in zip(wanted, values))
        ]
        return sorted(matches, key=lambda r: r.items())

    # -- updates (algebra-defined) ----------------------------------------------------------
    def insert(self, row: RowLike) -> XTuple:
        """Insert one row (generalised union with a singleton relation)."""
        candidate = self.relation._coerce_row(row)
        self._check_insert(candidate)
        self.relation.add(candidate)
        self.dominance.add(candidate)
        for index in self.indexes.values():
            index.insert(candidate)
        return candidate

    def insert_many(self, rows: Iterable[RowLike]) -> List[XTuple]:
        return [self.insert(row) for row in rows]

    def _remove_row(self, row: XTuple) -> None:
        """Remove one stored row from the relation and every index."""
        self.relation.discard(row)
        self.dominance.discard(row)
        for index in self.indexes.values():
            index.remove(row)

    def delete(self, row: RowLike) -> int:
        """Delete by generalised difference with a singleton relation.

        Following (4.8), every stored row that the given row subsumes is
        removed — deleting ``(p1, s2)`` also removes ``(p1, -)`` if present,
        since the latter carries no information not carried by the former.
        The dominated rows come straight from the live dominance index
        (one probe per stored signature), so nothing is scanned or rebuilt.
        Returns the number of rows removed.
        """
        target = self.relation._coerce_row(row)
        doomed = self.dominance.probe_dominated(target)
        for victim in doomed:
            self._remove_row(victim)
        return len(doomed)

    def delete_where(self, predicate: Callable[[XTuple], bool]) -> int:
        """Delete every row satisfying a Python predicate (a convenience form)."""
        doomed = [r for r in self.relation.tuples() if predicate(r)]
        for row in doomed:
            self._remove_row(row)
        return len(doomed)

    def update(self, old_row: RowLike, new_row: RowLike) -> XTuple:
        """Modification = deletion followed by addition (Section 7)."""
        old = self.relation._coerce_row(old_row)
        if old not in self.relation.tuples():
            raise StorageError(f"row {old!r} not present in table {self.name!r}")
        self.delete(old)
        try:
            return self.insert(new_row)
        except Exception:
            # Restore the old row so a failed update leaves the table unchanged.
            self.relation.add(old)
            self.dominance.add(old)
            for index in self.indexes.values():
                index.insert(old)
            raise

    def truncate(self) -> None:
        self.relation.clear()
        self.dominance.clear()
        for index in self.indexes.values():
            index.clear()

    def reset_rows(self, rows: Iterable[XTuple]) -> None:
        """Replace the stored rows wholesale and rebuild every index.

        The supported path for snapshot restore / bulk load — it keeps the
        hash indexes and the live dominance index consistent with the new
        row set.
        """
        self.relation._rows = set(rows)
        self.relation._dominance = None
        self.dominance.rebuild(self.relation.tuples())
        for index in self.indexes.values():
            index.rebuild(self.relation.tuples())

    # -- x-membership ------------------------------------------------------------------------
    def x_contains(self, row: RowLike) -> bool:
        """Proposition 4.2 against the live dominance index: ``t ∈̂ table``."""
        t = row if isinstance(row, XTuple) else self.relation._coerce_row(row)
        return self.dominance.has_dominator(t)

    # -- presentation ------------------------------------------------------------------------------
    def to_table(self) -> str:
        return self.relation.to_table()

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, attributes={list(self.attributes)}, rows={len(self.relation)}, "
            f"constraints={len(self.constraints)}, indexes={list(self.indexes)})"
        )
