"""Schema evolution with no-information nulls (the Table I / Table II story).

Section 2 motivates the ``ni`` interpretation with a schema change: the
administrator adds a ``TEL#`` column before any telephone numbers are
collected.  Under the no-information reading the widened table carries
*exactly* the same information as the old one — the two are
information-wise equivalent — whereas under "unknown" or "nonexistent" the
new table would assert facts nobody gathered.

This module performs such changes on :class:`~repro.storage.table.Table`
objects and reports the information-theoretic consequences:

* :func:`add_attribute` — widen the schema; rows are untouched, and the
  result is equivalent to the original (asserted by tests, shown by
  benchmark E2);
* :func:`drop_attribute` — narrow the schema by projection; this *can*
  lose information, and the returned report says whether it did;
* :func:`evolve` — apply a sequence of changes, accumulating reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..core.domains import Domain
from ..core.errors import SchemaError
from ..core.relation import Relation, RelationSchema
from ..core.xrelation import XRelation
from .table import Table


@dataclass
class EvolutionReport:
    """What a schema change did to the information content of a table."""

    operation: str
    table: str
    attribute: str
    information_preserved: bool
    rows_before: int
    rows_after: int
    details: str = ""

    def __str__(self) -> str:
        kept = "preserved" if self.information_preserved else "NOT preserved"
        return (
            f"{self.operation}({self.table}.{self.attribute}): information {kept} "
            f"({self.rows_before} → {self.rows_after} rows){'; ' + self.details if self.details else ''}"
        )


def add_attribute(
    table: Table,
    attribute: str,
    domain: Optional[Domain] = None,
    default=None,
) -> EvolutionReport:
    """Add *attribute* to the table's schema.

    With the default of ``None`` (i.e. ``ni``) the change is purely
    intensional: no row changes and the new table is information-wise
    equivalent to the old one.  Supplying a non-null *default* genuinely
    adds information (every row gains a fact), and the report says so.
    """
    if attribute in table.schema:
        raise SchemaError(f"attribute {attribute!r} already exists in table {table.name!r}")
    before = XRelation(table.relation.copy())
    rows_before = len(table.relation)
    domains = {attribute: domain} if domain is not None else None
    new_schema = table.schema.extend((attribute,), domains)
    new_relation = Relation(new_schema, validate=False)
    if default is None:
        new_relation._rows = set(table.relation.tuples())
    else:
        new_relation._rows = {
            row.extend({attribute: default}) for row in table.relation.tuples()
        }
    table.relation = new_relation
    table.dominance.rebuild(table.relation.tuples())
    for index in table.indexes.values():
        index.rebuild(table.relation.tuples())
    after = XRelation(table.relation.copy())
    preserved = after == before if default is None else after >= before
    return EvolutionReport(
        operation="add_attribute",
        table=table.name,
        attribute=attribute,
        information_preserved=bool(after >= before),
        rows_before=rows_before,
        rows_after=len(table.relation),
        details="equivalent to the original" if preserved and default is None else (
            "default value added new information" if default is not None else ""
        ),
    )


def drop_attribute(table: Table, attribute: str) -> EvolutionReport:
    """Remove *attribute* by projecting it away.

    The report's ``information_preserved`` flag is computed honestly: the
    drop preserves information iff the column held no non-null values (the
    projection is then equivalent to the original).
    """
    if attribute not in table.schema:
        raise SchemaError(f"attribute {attribute!r} does not exist in table {table.name!r}")
    if len(table.schema) == 1:
        raise SchemaError("cannot drop the last attribute of a table")
    before = XRelation(table.relation.copy())
    rows_before = len(table.relation)
    remaining = tuple(a for a in table.schema.attributes if a != attribute)
    new_schema = table.schema.project(remaining)
    new_relation = Relation(new_schema, validate=False)
    new_relation._rows = {row.project(remaining) for row in table.relation.tuples()}
    table.relation = new_relation
    table.dominance.rebuild(table.relation.tuples())
    for index in table.indexes.values():
        if attribute in index.attributes:
            raise SchemaError(
                f"index {index.name!r} uses attribute {attribute!r}; drop the index first"
            )
        index.rebuild(table.relation.tuples())
    after = XRelation(table.relation.copy())
    preserved = after == before
    return EvolutionReport(
        operation="drop_attribute",
        table=table.name,
        attribute=attribute,
        information_preserved=preserved,
        rows_before=rows_before,
        rows_after=len(table.relation),
        details="" if preserved else "non-null values were lost",
    )


def evolve(table: Table, changes: Sequence[Tuple[str, str]]) -> List[EvolutionReport]:
    """Apply a sequence of ``("add"|"drop", attribute)`` changes."""
    reports: List[EvolutionReport] = []
    for operation, attribute in changes:
        if operation == "add":
            reports.append(add_attribute(table, attribute))
        elif operation == "drop":
            reports.append(drop_attribute(table, attribute))
        else:
            raise SchemaError(f"unknown evolution operation {operation!r}")
    return reports
