"""The catalog: named tables, their constraints and cross-table foreign keys."""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.errors import StorageError
from ..core.relation import RelationSchema
from ..constraints.referential import ForeignKeyConstraint
from .table import Table, TableConstraint
from .wal import picklable_constraints, warn_dropped_constraints


class Catalog:
    """A registry of tables plus the foreign keys that relate them.

    Foreign keys live at the catalog level because they span two tables;
    the catalog wires the checks into inserts (referencing side) and
    deletes (referenced side) performed through :class:`Database`.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._foreign_keys: List[Tuple[str, ForeignKeyConstraint]] = []
        # Schema-change counter (create/drop/rename table, foreign keys);
        # combined with every table's physical-design epoch in
        # :meth:`epoch`, it versions everything a cached query plan may
        # depend on besides the data itself.
        self._ddl_epoch = 0
        # Write-ahead log shared with every registered table, wired by
        # :meth:`Database.attach_wal` (None without durability).
        self._wal = None

    # -- write-ahead logging -------------------------------------------------------
    def _wal_lock(self):
        wal = self._wal
        return wal.commit_scope() if wal is not None else nullcontext()

    def _log(self, record: dict) -> None:
        wal = self._wal
        if wal is not None and not wal.replaying:
            wal.append(record)

    def _create_record(self, table: Table) -> dict:
        """The ``create_table`` log record for *table*.  Unpicklable
        constraints are dropped from it (with a :class:`WalWarning` when
        a log is actually attached) and their names recorded so recovery
        can surface the enforcement gap."""
        constraints, dropped = picklable_constraints(table.constraints)
        if self._wal is not None and not self._wal.replaying:
            warn_dropped_constraints(dropped, table.name)
        return {
            "op": "create_table",
            "name": table.name,
            "schema": table.schema,
            "constraints": constraints,
            "dropped_constraints": dropped,
        }

    @property
    def epoch(self) -> int:
        """A monotone counter covering catalog DDL, index and ANALYZE changes.

        Any difference in the value means a cached plan built against the
        old catalog may no longer reflect the best (or even a valid)
        physical choice; sessions compare epochs on every prepared
        execution and transparently re-plan on mismatch.  Dropping a
        table folds the dropped table's epoch into the catalog counter so
        the sum never moves backwards.
        """
        return self._ddl_epoch + sum(
            table.ddl_epoch for table in self._tables.values()
        )

    # -- table management ---------------------------------------------------------
    def create_table(
        self,
        name: str,
        schema: Union[RelationSchema, Sequence[str]],
        constraints: Sequence[TableConstraint] = (),
    ) -> Table:
        if name in self._tables:
            raise StorageError(f"table {name!r} already exists")
        table = Table(schema, constraints, name=name)
        with self._wal_lock():
            self._log(self._create_record(table))
            table._wal = self._wal
            self._tables[name] = table
            self._ddl_epoch += 1
        return table

    def register_table(self, table: Table) -> Table:
        if table.name in self._tables:
            raise StorageError(f"table {table.name!r} already exists")
        with self._wal_lock():
            # Logged as a create plus a load: replay rebuilds the table
            # from its schema and current rows (pre-registration history
            # is unknowable here).
            self._log(self._create_record(table))
            if table.rows():
                self._log({
                    "op": "load",
                    "table": table.name,
                    "rows": list(table.rows()),
                })
            for index_name, attributes in table.index_specs().items():
                self._log({
                    "op": "create_index",
                    "table": table.name,
                    "name": index_name,
                    "attributes": attributes,
                })
            table._wal = self._wal
            self._tables[table.name] = table
            self._ddl_epoch += 1
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise StorageError(f"no table named {name!r}")
        referencing = [
            fk for owner, fk in self._foreign_keys
            if fk.referenced_relation == name and owner != name
        ]
        if referencing:
            raise StorageError(
                f"cannot drop {name!r}: referenced by {[fk.name for fk in referencing]}"
            )
        with self._wal_lock():
            self._log({"op": "drop_table", "name": name})
            dropped = self._tables.pop(name)
            dropped._wal = None
            self._foreign_keys = [(owner, fk) for owner, fk in self._foreign_keys if owner != name]
            # Fold the dropped table's epoch in so the catalog-wide sum stays
            # monotone (a cache keyed on it must never see a value reused).
            self._ddl_epoch += dropped.ddl_epoch + 1

    def rename_table(self, old: str, new: str) -> Table:
        if old not in self._tables:
            raise StorageError(f"no table named {old!r}")
        if new in self._tables:
            raise StorageError(f"table {new!r} already exists")
        with self._wal_lock():
            self._log({"op": "rename_table", "old": old, "new": new})
            table = self._tables.pop(old)
            table.relation.schema.name = new
            self._tables[new] = table
            # The foreign-key rewrite stays inside the WAL lock: a
            # background checkpoint serialising between the rename and
            # the rewrite would capture entries still naming the old
            # table, which restore_foreign_keys silently drops.
            self._foreign_keys = [
                (new if owner == old else owner,
                 ForeignKeyConstraint(fk.attributes, new if fk.referenced_relation == old else fk.referenced_relation,
                                      fk.referenced_attributes, name=fk.name))
                for owner, fk in self._foreign_keys
            ]
            self._ddl_epoch += 1
        return table

    # -- lookups --------------------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(
                f"no table named {name!r}; available: {', '.join(sorted(self._tables))}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def index_specs(self) -> Dict[str, Dict[str, Tuple[str, ...]]]:
        """Every table's persistent indexes, ``{table: {index: attributes}}``.

        This is the catalog-level surface snapshots persist so a restore
        can round-trip user-created indexes, not just rows.
        """
        return {name: table.index_specs() for name, table in self._tables.items()}

    def table_for_relation(self, relation) -> Optional[Table]:
        """The table whose stored relation *is* this object, if any.

        The QUEL analyzer hands the planner bare
        :class:`~repro.core.relation.Relation` objects; identity matching
        is how the planner finds its way back to the owning table's live
        statistics and persistent indexes.
        """
        for table in self._tables.values():
            if table.relation is relation:
                return table
        return None

    # -- foreign keys ------------------------------------------------------------------
    def add_foreign_key(self, owner: str, constraint: ForeignKeyConstraint, validate_existing: bool = True) -> None:
        owner_table = self.table(owner)
        referenced_table = self.table(constraint.referenced_relation)
        if validate_existing:
            constraint.check(owner_table.relation, referenced_table.relation)
        with self._wal_lock():
            self._log({"op": "add_foreign_key", "owner": owner, "constraint": constraint})
            self._foreign_keys.append((owner, constraint))
            self._ddl_epoch += 1

    def foreign_key_entries(self) -> List[Tuple[str, ForeignKeyConstraint]]:
        """A copy of every ``(owner, constraint)`` entry.

        The snapshot surface transactions use: pair with
        :meth:`restore_foreign_keys` to roll the foreign-key set back to
        a saved state.
        """
        return list(self._foreign_keys)

    def restore_foreign_keys(self, entries: List[Tuple[str, ForeignKeyConstraint]]) -> None:
        """Wholesale-replace the foreign-key entries from a saved copy.

        Constraints are not re-validated: the entries come from
        :meth:`foreign_key_entries` of this very catalog.  Entries naming
        tables that no longer exist are dropped rather than restored.
        """
        kept = [
            (owner, fk) for owner, fk in entries
            if owner in self._tables and fk.referenced_relation in self._tables
        ]
        with self._wal_lock():
            self._log({"op": "restore_foreign_keys", "entries": kept})
            self._foreign_keys = kept
            self._ddl_epoch += 1

    def foreign_keys_of(self, owner: str) -> List[ForeignKeyConstraint]:
        return [fk for table_name, fk in self._foreign_keys if table_name == owner]

    def foreign_keys_referencing(self, referenced: str) -> List[Tuple[str, ForeignKeyConstraint]]:
        return [
            (owner, fk) for owner, fk in self._foreign_keys
            if fk.referenced_relation == referenced
        ]

    def __repr__(self) -> str:
        return f"Catalog(tables={self.table_names()}, foreign_keys={len(self._foreign_keys)})"
