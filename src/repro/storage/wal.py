"""Write-ahead logging and checkpoint recovery for the storage layer.

Everything in the engine so far lives and dies in process memory.  This
module adds the durability layer underneath the atomic bulk-mutation
funnel: every bulk entry point (``insert_many`` / ``delete_many`` /
``update_many`` / ``load`` / ``truncate`` / ``reset_rows`` and all DDL —
create/drop/rename table, create/drop index, foreign keys, ANALYZE)
appends one **logical, replayable record** to the log *before* applying
its state change, and :meth:`Session.transaction` brackets statement
groups with begin/commit/abort markers.

Design notes
------------

* **Logical logging off the bulk funnel.**  The bulk entry points already
  compute the exact row deltas — coerced candidate rows on insert, the
  (4.8) dominated closure on delete — so a record is just ``(op kind,
  table, row sets)`` and replay never re-runs constraints, predicates or
  foreign-key checks (they passed when the record was written).  Notably,
  ``delete_where`` logs its matched row set, so arbitrary Python
  predicates never need to be serialised.

* **Frames.**  Each record is one length-prefixed, CRC32-checksummed
  frame (``<u32 length><u32 crc32><pickle payload>``).  The reader stops
  at the first short or corrupt frame — a torn trailing record from a
  crash mid-append is discarded, never half-applied.

* **Transactions.**  Replay applies autocommitted records immediately and
  buffers records between ``begin`` and the matching ``commit``/``abort``;
  a log that *ends* inside an open transaction has that suffix discarded,
  so recovery is all-or-nothing per statement group.  (Aborted groups are
  replayed in full: the rollback's compensating ``load`` records are part
  of the group, so the replay converges to the same state.)

* **Checkpoints.**  :meth:`WriteAheadLog.checkpoint` serialises the
  :meth:`Database.snapshot` surface — rows, index definitions *and* table
  statistics — plus schemas, constraints and foreign keys, atomically
  (tmp file + fsync + rename + directory fsync), then resets the log.
  Recovery = load the last checkpoint + replay the log tail.  Checkpoint
  and log are bound by a monotonic **checkpoint sequence number**: each
  checkpoint carries its number and the reset log restarts with a
  ``checkpoint_mark`` frame naming the checkpoint it follows.  A crash
  between the checkpoint rename and the log reset leaves the new
  checkpoint plus the *old* log — its mark names an older checkpoint, so
  recovery discards it instead of replaying already-covered records over
  the checkpointed state; the directory fsync guarantees the rename is
  durable before the covered log is destroyed.

* **Background compaction.**  :class:`CheckpointWorker` is a daemon
  thread that periodically checkpoints once the log has grown, in the
  style of byoda's pod maintenance workers (``backup_datastore.py`` /
  ``sync_datastore.py``): a quiet loop with an interval, a stop event and
  per-cycle error latching — the engine never blocks on it.

* **Sync modes.**  ``sync="commit"`` (default) flushes and fsyncs the log
  at every autocommit boundary and transaction commit — a completed
  statement survives a crash.  ``sync="none"`` leaves flushing to the OS
  (and to checkpoints): faster bulk loads, a bounded window of recent
  statements at risk.

* **Group commit.**  Under ``sync="commit"`` the fsync is issued *after*
  the append-and-apply critical section, through :meth:`commit_scope` /
  :meth:`_sync_to`: a commit boundary first checks whether a later fsync
  already covered its record (every fsync covers *all* records written
  before it) and only syncs when it was not.  Concurrent committing
  writers therefore coalesce — while one writer's fsync is in flight the
  others append behind it, and the next single fsync makes them all
  durable — without weakening the guarantee that a statement returns
  only once its record is on disk.  ``group_commit=False`` restores the
  fsync-inside-the-critical-section behaviour (the benchmark baseline).
"""

from __future__ import annotations

import logging
import os
import pickle
import struct
import threading
import time
import warnings
import zlib
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import WalError, WalWarning
from ..core.tuples import XTuple
from ..obs import MetricsRegistry, get_registry, registry_for

_logger = logging.getLogger("repro.storage.wal")

#: Frame header: payload byte length, CRC32 of the payload.
_HEADER = struct.Struct("<II")

#: The log and checkpoint file names inside a WAL directory.
LOG_NAME = "wal.log"
CHECKPOINT_NAME = "checkpoint.bin"

#: Record kinds that carry no state change: transaction structure plus
#: the ``checkpoint_mark`` frame a reset log starts with (it binds the
#: log to the checkpoint it follows; see :meth:`WriteAheadLog.truncate`).
_MARKERS = frozenset({"begin", "commit", "abort", "checkpoint_mark"})

#: Supported durability modes.
SYNC_MODES = ("none", "commit")


# ---------------------------------------------------------------------------
# Frame encoding / tolerant decoding
# ---------------------------------------------------------------------------

#: Record fields holding row sets, stored in frames as bare item-tuples.
_ROW_KEYS = ("rows", "removed")


def _pack_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Strip row payloads down to their canonical ``(attr, value)`` pair
    tuples.  Pickling 10k bare tuples is ~5x cheaper (and ~40% smaller)
    than 10k :class:`XTuple` reduce calls, and the append path is the hot
    one — every bulk mutation pays it while holding the WAL lock; the
    matching rebuild in :func:`_unpack_record` only runs during recovery.
    """
    packed = None
    for key in _ROW_KEYS:
        rows = record.get(key)
        if rows:
            if packed is None:
                packed = dict(record)
            packed[key] = [row.items() for row in rows]
    return record if packed is None else packed


def _unpack_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild the row payloads packed by :func:`_pack_record` (the pairs
    are already canonical — sorted, ni-free — so the validating
    constructor is skipped)."""
    for key in _ROW_KEYS:
        rows = record.get(key)
        if rows:
            record[key] = [XTuple._restore(pairs) for pairs in rows]
    return record


def encode_frame(record: Dict[str, Any]) -> bytes:
    """One length-prefixed, checksummed frame for *record*."""
    payload = pickle.dumps(_pack_record(record), protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def read_frames(path: str) -> Tuple[List[Dict[str, Any]], List[int], int]:
    """Decode every complete frame of the log at *path*.

    Returns ``(records, end_offsets, valid_length)``: the decoded records,
    the byte offset just past each one, and the total length of the valid
    prefix.  Reading stops at the first torn frame — a short header, a
    short payload, a checksum mismatch or an unpicklable payload — so a
    record half-written by a crash is discarded rather than half-applied.
    A missing file is an empty log.
    """
    records: List[Dict[str, Any]] = []
    ends: List[int] = []
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return records, ends, 0
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            break  # torn tail: the payload never finished writing
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break  # corrupt record: everything after it is suspect
        try:
            record = pickle.loads(payload)
        except Exception:
            break
        if not isinstance(record, dict) or "op" not in record:
            break
        records.append(_unpack_record(record))
        ends.append(end)
        offset = end
    return records, ends, offset


def committed_prefix(
    records: Sequence[Dict[str, Any]], ends: Sequence[int]
) -> Tuple[List[Dict[str, Any]], int]:
    """Drop an unfinished trailing transaction from a decoded log.

    Records outside any ``begin``/``commit`` bracket autocommit; records
    inside a bracket become durable only when the (outermost) group
    closes — with ``commit`` *or* ``abort``, since an aborted group's
    compensating restore records are part of the group.  A log ending
    mid-group therefore loses exactly that group's suffix.  Returns the
    replayable records plus the byte length of the kept prefix (what the
    recovered log should be truncated to before appending continues).
    """
    applied: List[Dict[str, Any]] = []
    keep_length = 0
    buffer: List[Dict[str, Any]] = []
    depth = 0
    for record, end in zip(records, ends):
        op = record.get("op")
        if op == "begin":
            depth += 1
            buffer.append(record)
        elif op in ("commit", "abort"):
            buffer.append(record)
            if depth:
                depth -= 1
            if depth == 0:
                applied.extend(buffer)
                buffer = []
                keep_length = end
        elif depth:
            buffer.append(record)
        else:
            applied.append(record)
            keep_length = end
    return applied, keep_length


# ---------------------------------------------------------------------------
# Replay: apply one logical record to a database
# ---------------------------------------------------------------------------

def apply_record(database, record: Dict[str, Any]) -> None:
    """Apply one replayable record to *database*.

    Row-delta records go through the table's trusted bulk-apply helpers
    (the same one-update-per-structure paths the live entry points use);
    constraint and foreign-key checks are *not* re-run — they passed when
    the record was logged.  Must be called with the database's WAL either
    unattached or in replay mode, so nothing is re-logged.
    """
    op = record["op"]
    if op in _MARKERS:
        return
    catalog = database.catalog
    if op == "insert":
        table = catalog.table(record["table"])
        stored = table.relation.tuples()
        fresh = [r for r in dict.fromkeys(record["rows"]) if r not in stored]
        if fresh:
            table._apply_bulk_add(fresh)
    elif op == "remove":
        table = catalog.table(record["table"])
        stored = table.relation.tuples()
        doomed = {r for r in record["rows"] if r in stored}
        if doomed:
            table._apply_bulk_remove(doomed)
    elif op == "update":
        table = catalog.table(record["table"])
        stored = table.relation.tuples()
        doomed = {r for r in record["removed"] if r in stored}
        if doomed:
            table._apply_bulk_remove(doomed)
        fresh = [r for r in dict.fromkeys(record["rows"]) if r not in stored]
        if fresh:
            table._apply_bulk_add(fresh)
    elif op == "load":
        catalog.table(record["table"]).reset_rows(
            record["rows"], statistics=record.get("statistics")
        )
    elif op == "truncate":
        catalog.table(record["table"]).truncate()
    elif op == "analyze":
        catalog.table(record["table"]).analyze()
    elif op == "create_table":
        warn_dropped_constraints(
            record.get("dropped_constraints"), record["name"], registry_for(database)
        )
        catalog.create_table(record["name"], record["schema"], record["constraints"])
    elif op == "drop_table":
        catalog.drop_table(record["name"])
    elif op == "rename_table":
        catalog.rename_table(record["old"], record["new"])
    elif op == "create_index":
        catalog.table(record["table"]).create_index(
            record["attributes"], name=record["name"]
        )
    elif op == "drop_index":
        catalog.table(record["table"]).drop_index(record["name"])
    elif op == "add_foreign_key":
        catalog.add_foreign_key(
            record["owner"], record["constraint"], validate_existing=False
        )
    elif op == "restore_foreign_keys":
        catalog.restore_foreign_keys(record["entries"])
    else:
        raise WalError(f"unknown WAL record kind {op!r}")


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------

def picklable_constraints(constraints: Iterable[Any]) -> Tuple[List[Any], List[str]]:
    """Split *constraints* into ``(picklable, dropped_names)``.

    Key / NOT NULL / FD / FK constraints are plain data and always
    round-trip; a :class:`RowConstraint` closing over a lambda cannot be
    serialised — it is dropped from the durable form (its checks already
    ran on every logged row, so recovered *rows* still satisfy it; only
    enforcement of post-recovery mutations is lost, which the caller can
    re-add with :meth:`Table.add_constraint`).  The dropped constraints'
    names travel in the checkpoint / ``create_table`` record so the gap
    is surfaced again — as a :class:`WalWarning` — at recovery time.
    """
    kept: List[Any] = []
    dropped: List[str] = []
    for constraint in constraints:
        try:
            pickle.dumps(constraint, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            dropped.append(
                getattr(constraint, "name", None) or type(constraint).__name__
            )
            continue
        kept.append(constraint)
    return kept, dropped


def warn_dropped_constraints(
    dropped: Optional[Sequence[str]],
    table: str,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Emit the :class:`WalWarning` for constraints missing from durable
    state — once when they are dropped (logging / checkpointing), once
    when the gap is replayed (recovery).  Each emission also bumps the
    ``repro_wal_warnings_total`` counter in *registry* (the process
    default when none is given)."""
    if dropped:
        (registry or get_registry()).counter(
            "repro_wal_warnings_total",
            "WalWarning emissions (durability gaps surfaced to the user).",
        ).inc()
        warnings.warn(
            f"constraint(s) {sorted(dropped)} on table {table!r} cannot be "
            f"pickled and are not part of the durable state; a recovered "
            f"database will not enforce them until they are re-attached "
            f"with Table.add_constraint",
            WalWarning,
            stacklevel=3,
        )


def build_checkpoint_state(database) -> Dict[str, Any]:
    """The durable form of a whole database: the ``Database.snapshot``
    surface (rows + index definitions + statistics) plus schemas,
    constraints and foreign keys.  (The checkpoint sequence number is
    stamped in by :meth:`WriteAheadLog.checkpoint`.)"""
    tables: Dict[str, Any] = {}
    for name in database.catalog.table_names():
        table = database.catalog.table(name)
        constraints, dropped = picklable_constraints(table.constraints)
        warn_dropped_constraints(dropped, name, registry_for(database))
        tables[name] = {
            "schema": table.schema,
            "constraints": constraints,
            "dropped_constraints": dropped,
            "rows": list(table.rows()),
            "indexes": table.index_specs(),
            "statistics": table.statistics.copy(),
        }
    return {
        "format": 2,
        "tables": tables,
        "foreign_keys": database.catalog.foreign_key_entries(),
    }


def apply_checkpoint_state(database, state: Dict[str, Any]) -> None:
    """Load a checkpoint state into an *empty* database."""
    catalog = database.catalog
    if len(catalog):
        raise WalError(
            f"recovery needs an empty database, but {database.name!r} "
            f"already has tables {catalog.table_names()}"
        )
    for name, entry in state["tables"].items():
        warn_dropped_constraints(
            entry.get("dropped_constraints"), name, registry_for(database)
        )
        table = catalog.create_table(name, entry["schema"], entry["constraints"])
        table.reset_rows(entry["rows"], statistics=entry["statistics"])
        for index_name, attributes in entry["indexes"].items():
            table.create_index(attributes, name=index_name)
    catalog.restore_foreign_keys(state["foreign_keys"])


# ---------------------------------------------------------------------------
# The log itself
# ---------------------------------------------------------------------------

class WriteAheadLog:
    """A durable logical log plus checkpoint for one database.

    Parameters
    ----------
    directory:
        Where ``wal.log`` and ``checkpoint.bin`` live (created if absent).
    sync:
        ``"commit"`` — flush + fsync at every autocommit boundary and
        transaction commit/abort; ``"none"`` — leave flushing to the OS
        and to checkpoints.

    The instance owns an :class:`threading.RLock` (:attr:`lock`) that the
    storage layer holds across *append + apply* of every mutation, so the
    background checkpoint worker can never capture a state snapshot
    between a record being written and its state change landing (which
    would lose the change when the log is truncated).
    """

    def __init__(self, directory: str, sync: str = "commit", group_commit: bool = True):
        if sync not in SYNC_MODES:
            raise WalError(f"unknown sync mode {sync!r}; choose from {SYNC_MODES}")
        self.directory = os.path.abspath(directory)
        self.sync = sync
        #: Coalesce commit-boundary fsyncs across concurrent writers (see
        #: the module docstring).  False restores one inline fsync per
        #: commit inside the append critical section.
        self.group_commit = group_commit
        os.makedirs(self.directory, exist_ok=True)
        self.log_path = os.path.join(self.directory, LOG_NAME)
        self.checkpoint_path = os.path.join(self.directory, CHECKPOINT_NAME)
        self.lock = threading.RLock()
        #: True while recovery replays this log into a database — the
        #: storage-layer hooks skip logging so replay never re-appends.
        self.replaying = False
        #: Open ``begin`` markers minus ``commit``/``abort`` markers.
        self.transaction_depth = 0
        #: Records appended by this process (markers included).
        self.records_appended = 0
        #: Checkpoints taken through this log.
        self.checkpoints_taken = 0
        #: fsync(2) calls actually issued by this process.
        self.fsyncs_issued = 0
        #: Commit boundaries that skipped their fsync because a later
        #: group-commit fsync had already covered their record.
        self.commits_coalesced = 0
        #: Monotone count of appended records; every fsync covers all
        #: records written before it, so ``_synced_seq >= seq`` means the
        #: record numbered *seq* is durable.
        self._append_seq = 0
        self._synced_seq = 0
        #: Per-thread commit boundary deferred from inside a
        #: :meth:`commit_scope` (the scope exit issues the sync once the
        #: append-and-apply critical section has been left).
        self._pending = threading.local()
        #: Sequence number of the checkpoint currently on disk (0 when
        #: none was ever taken).  Stamped into every checkpoint file and
        #: into the ``checkpoint_mark`` frame the reset log restarts
        #: with, so recovery can tell a log that *follows* the checkpoint
        #: from a stale pre-checkpoint log that survived a crash between
        #: the checkpoint rename and the log reset.
        self.checkpoint_seq = 0
        #: Byte length of the leading ``checkpoint_mark`` frame (0 for a
        #: log that was never reset); :meth:`tail_bytes` measures the
        #: records appended since the last checkpoint relative to it.
        self._header_length = 0
        self._file = None
        self._closed = False
        #: The metrics registry this log reports into (None → the
        #: process-global default).  :meth:`Database.attach_wal` points
        #: it at the database's registry.
        self.metrics: Optional[MetricsRegistry] = None
        self._metric_handles: Optional[Dict[str, Any]] = None

    # -- metrics -------------------------------------------------------------
    def set_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        """Report into *registry* from now on (rebuilds cached handles)."""
        self.metrics = registry
        self._metric_handles = None

    def _m(self) -> Dict[str, Any]:
        """Cached child handles for the hot append path — steady-state
        instrumentation cost is one dict lookup + a locked float add."""
        handles = self._metric_handles
        if handles is None:
            registry = self.metrics if self.metrics is not None else get_registry()
            handles = {
                "records": registry.counter(
                    "repro_wal_records_total",
                    "Records appended to the write-ahead log (markers included).",
                ).labels(),
                "bytes": registry.counter(
                    "repro_wal_bytes_total",
                    "Bytes appended to the write-ahead log.",
                ).labels(),
                "fsyncs": registry.counter(
                    "repro_wal_fsyncs_total",
                    "fsync(2) calls issued by the log (commit-sync boundaries, "
                    "explicit flushes and log resets).",
                ).labels(),
                "coalesced": registry.counter(
                    "repro_wal_commits_coalesced_total",
                    "Commit boundaries made durable by another writer's "
                    "group-commit fsync instead of their own.",
                ).labels(),
                "checkpoints": registry.counter(
                    "repro_wal_checkpoints_total",
                    "Checkpoints taken through this process.",
                ).labels(),
                "checkpoint_seconds": registry.histogram(
                    "repro_wal_checkpoint_seconds",
                    "Wall time of each checkpoint (serialise + rename + log reset).",
                ).labels(),
                "checkpoint_bytes": registry.gauge(
                    "repro_wal_checkpoint_bytes",
                    "Size of the checkpoint file on disk after the last checkpoint.",
                ).labels(),
                "checkpoint_seq": registry.gauge(
                    "repro_wal_checkpoint_seq",
                    "Sequence number of the checkpoint currently on disk.",
                ).labels(),
                "recovered": registry.counter(
                    "repro_wal_recovered_records_total",
                    "Log records replayed during recovery.",
                ).labels(),
            }
            self._metric_handles = handles
        return handles

    # -- appending -----------------------------------------------------------
    def _handle(self):
        if self._closed:
            raise WalError(f"write-ahead log {self.log_path!r} is closed")
        if self._file is None:
            self._file = open(self.log_path, "ab")
        return self._file

    def append(self, record: Dict[str, Any]) -> int:
        """Append one record; returns the log position after the frame.

        Under ``sync="commit"`` the record is made durable whenever it
        leaves the log at transaction depth zero — i.e. for every
        autocommitted statement and for every ``commit``/``abort``
        marker; records inside an open group ride the group's fsync.
        With group commit (the default) the fsync itself happens through
        :meth:`_sync_to` *after* the append critical section — deferred
        to the enclosing :meth:`commit_scope` exit when a storage entry
        point still holds the lock across append + apply — so concurrent
        commit boundaries can share one fsync.
        """
        with self.lock:
            if self.replaying:
                return self.position()
            handles = self._m()
            handle = self._handle()
            frame = encode_frame(record)
            handle.write(frame)
            op = record.get("op")
            if op == "begin":
                self.transaction_depth += 1
            elif op in ("commit", "abort") and self.transaction_depth:
                self.transaction_depth -= 1
            self._append_seq += 1
            seq = self._append_seq
            need_sync = self.sync == "commit" and self.transaction_depth == 0
            if need_sync and not self.group_commit:
                handle.flush()
                os.fsync(handle.fileno())
                self._synced_seq = seq
                self.fsyncs_issued += 1
                handles["fsyncs"].inc()
                need_sync = False
            self.records_appended += 1
            handles["records"].inc()
            handles["bytes"].inc(len(frame))
            position = handle.tell()
        if need_sync:
            if self.lock._is_owned():
                # A storage entry point holds the lock across append +
                # apply; its commit_scope() exit issues the sync once the
                # critical section is over, letting other writers append
                # (and be covered) in the meantime.
                self._pending.seq = seq
            else:
                self._sync_to(seq)
        return position

    @contextmanager
    def commit_scope(self):
        """The append-and-apply critical section of one statement.

        Storage entry points hold this around *log record + state
        change* (the checkpoint-consistency invariant); on exit — once
        the lock is genuinely released, not merely un-nested — any commit
        boundary the scope's appends deferred is made durable via the
        group-commit path.  The statement therefore still returns only
        after its record is on disk, but the fsync happens outside the
        critical section where concurrent writers can coalesce behind it.
        """
        self.lock.acquire()
        try:
            yield
        finally:
            self.lock.release()
            if not self.lock._is_owned():
                seq = getattr(self._pending, "seq", None)
                if seq is not None:
                    self._pending.seq = None
                    self._sync_to(seq)

    def _sync_to(self, seq: int) -> None:
        """Make the record numbered *seq* durable (group commit).

        Every fsync covers all records appended before it, so if another
        writer's fsync has already moved ``_synced_seq`` past *seq* this
        boundary returns without touching the disk — that skipped fsync
        is the group-commit win, counted in ``commits_coalesced``.
        """
        with self.lock:
            if self._synced_seq >= seq:
                self.commits_coalesced += 1
                self._m()["coalesced"].inc()
                return
            handle = self._file
            if handle is None or self._closed:
                return  # truncate/close already fsynced past this record
            covered = self._append_seq
            handle.flush()
            os.fsync(handle.fileno())
            self._synced_seq = covered
            self.fsyncs_issued += 1
            self._m()["fsyncs"].inc()

    def position(self) -> int:
        """The current end of the log in bytes (unflushed writes included)."""
        with self.lock:
            if self._file is not None:
                return self._file.tell()
            try:
                return os.path.getsize(self.log_path)
            except OSError:
                return 0

    def tail_bytes(self) -> int:
        """Bytes of records appended since the last checkpoint — the log
        length minus the leading ``checkpoint_mark`` frame.  What the
        background worker compares against ``min_log_bytes``."""
        with self.lock:
            return max(0, self.position() - self._header_length)

    @property
    def in_transaction(self) -> bool:
        return self.transaction_depth > 0

    def flush(self) -> None:
        with self.lock:
            if self._file is not None:
                self._file.flush()
                os.fsync(self._file.fileno())
                self._synced_seq = self._append_seq
                self.fsyncs_issued += 1
                self._m()["fsyncs"].inc()

    def _fsync_directory(self) -> None:
        """Make a rename inside the WAL directory durable (best-effort on
        platforms whose directories cannot be opened or fsynced)."""
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def truncate(self) -> None:
        """Reset the log (after a successful checkpoint): drop every
        record and restart with a ``checkpoint_mark`` frame naming the
        checkpoint now on disk, so recovery can tell this log belongs
        *after* that checkpoint rather than before it."""
        with self.lock:
            if self._file is not None:
                self._file.close()
            self._file = open(self.log_path, "wb")
            self._file.write(
                encode_frame({"op": "checkpoint_mark", "seq": self.checkpoint_seq})
            )
            self._file.flush()
            os.fsync(self._file.fileno())
            self._synced_seq = self._append_seq
            self.fsyncs_issued += 1
            self._m()["fsyncs"].inc()
            self._header_length = self._file.tell()

    def close(self) -> None:
        with self.lock:
            if self._file is not None:
                self._file.flush()
                os.fsync(self._file.fileno())
                self._synced_seq = self._append_seq
                self.fsyncs_issued += 1
                self._file.close()
                self._file = None
            self._closed = True

    # -- checkpointing ---------------------------------------------------------
    def checkpoint(self, database) -> bool:
        """Serialise the database atomically, then reset the log.

        Returns False (and does nothing) while a transaction group is
        open — checkpointing uncommitted state and truncating away its
        potential rollback would break crash atomicity.  The checkpoint
        file is written to a temp path, fsynced and renamed into place,
        and the directory is fsynced so the rename is durable *before*
        the covered log is destroyed; a crash at any point leaves either
        the previous checkpoint + full log, or the new checkpoint + a log
        whose ``checkpoint_mark`` recovery recognises as stale.
        """
        with self.lock:
            if self._closed:
                raise WalError(f"write-ahead log {self.log_path!r} is closed")
            if self.transaction_depth:
                return False
            started = time.perf_counter()
            state = build_checkpoint_state(database)
            state["seq"] = self.checkpoint_seq + 1
            tmp_path = self.checkpoint_path + ".tmp"
            with open(tmp_path, "wb") as handle:
                pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.checkpoint_path)
            self._fsync_directory()
            self.checkpoint_seq += 1
            self.truncate()
            self.checkpoints_taken += 1
            handles = self._m()
            handles["checkpoints"].inc()
            handles["checkpoint_seconds"].observe(time.perf_counter() - started)
            handles["checkpoint_seq"].set(self.checkpoint_seq)
            try:
                handles["checkpoint_bytes"].set(os.path.getsize(self.checkpoint_path))
            except OSError:
                pass
            return True

    # -- recovery --------------------------------------------------------------
    def recover_into(self, database) -> bool:
        """Recover persisted state into *database* (which must be empty
        when there is anything to recover).

        Loads the last checkpoint, replays the surviving log tail —
        complete, checksummed frames up to the first torn record, minus
        any unfinished trailing transaction — and physically truncates
        the log back to the replayed prefix so later appends never
        interleave with discarded garbage.  A log whose leading
        ``checkpoint_mark`` names an *older* checkpoint than the one on
        disk is a pre-checkpoint log that survived a crash between the
        checkpoint rename and the log reset: every record in it is
        already covered by the checkpoint, so it is discarded wholesale
        instead of being replayed over the checkpointed state.  Returns
        True when existing state was recovered, False for a fresh
        directory.
        """
        with self.lock:
            state = None
            try:
                with open(self.checkpoint_path, "rb") as handle:
                    state = pickle.load(handle)
            except FileNotFoundError:
                pass
            except Exception as error:
                raise WalError(
                    f"checkpoint {self.checkpoint_path!r} is unreadable: {error}"
                ) from error
            checkpoint_seq = state.get("seq", 0) if state is not None else 0
            records, ends, _valid = read_frames(self.log_path)
            if state is None and not records:
                return False
            has_mark = bool(records) and records[0].get("op") == "checkpoint_mark"
            log_seq = records[0].get("seq", 0) if has_mark else 0
            if log_seq > checkpoint_seq:
                raise WalError(
                    f"log {self.log_path!r} follows checkpoint #{log_seq} but "
                    f"{self.checkpoint_path!r} holds checkpoint "
                    f"#{checkpoint_seq}: the checkpoint the log depends on "
                    f"is missing"
                )
            stale_log = log_seq < checkpoint_seq
            if stale_log:
                # Everything in the log predates (and is covered by) the
                # checkpoint — replay nothing.
                records, ends = [], []
            applied, keep_length = committed_prefix(records, ends)
            self.checkpoint_seq = checkpoint_seq
            if applied:
                self._m()["recovered"].inc(len(applied))
            self.replaying = True
            try:
                if state is not None:
                    apply_checkpoint_state(database, state)
                elif len(database.catalog):
                    raise WalError(
                        f"recovery needs an empty database, but "
                        f"{database.name!r} already has tables"
                    )
                for record in applied:
                    apply_record(database, record)
            finally:
                self.replaying = False
            # Drop the torn / uncommitted suffix from disk before the log
            # reopens for appending.
            if self._file is not None:
                self._file.close()
                self._file = None
            if has_mark and not stale_log:
                with open(self.log_path, "r+b") as handle:
                    handle.truncate(keep_length)
                    handle.flush()
                    os.fsync(handle.fileno())
                self._header_length = ends[0]
            elif checkpoint_seq:
                # Stale log, or a checkpointed log whose mark itself was
                # torn away: restart it bound to the checkpoint on disk.
                self.truncate()
            else:
                with open(self.log_path, "ab") as handle:
                    pass  # ensure it exists
                with open(self.log_path, "r+b") as handle:
                    handle.truncate(keep_length)
                    handle.flush()
                    os.fsync(handle.fileno())
                self._header_length = 0
            return True

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.directory!r}, sync={self.sync!r}, "
            f"position={self.position()}, "
            f"transaction_depth={self.transaction_depth})"
        )


# ---------------------------------------------------------------------------
# Background checkpoint / compaction worker
# ---------------------------------------------------------------------------

class CheckpointWorker:
    """Periodically checkpoint a WAL-attached database in the background.

    The shape follows byoda's pod maintenance workers: a daemon thread, a
    fixed interval, a stop event, and per-cycle error latching — a failed
    cycle records the exception and the loop keeps going, never taking
    the engine down with it.  A cycle is skipped while a transaction
    group is open or while the log is still below *min_log_bytes* (no
    point compacting an empty log).
    """

    def __init__(self, database, interval: float = 30.0, min_log_bytes: int = 1):
        self.database = database
        self.interval = float(interval)
        self.min_log_bytes = int(min_log_bytes)
        self.cycles = 0
        self.last_error: Optional[BaseException] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Failure surfacing (see _record_outcome): the latched error is
        # also exported through the metrics registry and logged once per
        # *distinct* error, so a quietly failing background worker shows
        # up on a dashboard instead of waiting for a manual poll.
        self._last_warned: Optional[str] = None
        registry = registry_for(database)
        self._runs_metric = registry.counter(
            "repro_checkpoint_worker_runs_total",
            "Background checkpoint cycles that took a checkpoint.",
        ).labels()
        self._errors_metric = registry.counter(
            "repro_checkpoint_worker_errors_total",
            "Background checkpoint cycles that raised.",
        ).labels()
        self._failing_metric = registry.gauge(
            "repro_checkpoint_worker_failing",
            "1 while the most recent background checkpoint cycle failed, else 0.",
        ).labels()

    def _record_outcome(self, error: Optional[BaseException]) -> None:
        """Latch *error* (None on success) and surface it: bump the error
        counter, raise the failing gauge, and log a warning — once per
        distinct error message, so a persistent failure does not spam the
        log every interval but a *new* failure is always reported."""
        self.last_error = error
        if error is None:
            self._failing_metric.set(0)
            self._last_warned = None
            return
        self._errors_metric.inc()
        self._failing_metric.set(1)
        description = f"{type(error).__name__}: {error}"
        if description != self._last_warned:
            self._last_warned = description
            _logger.warning(
                "background checkpoint of database %r failed (will retry "
                "every %.1fs): %s",
                getattr(self.database, "name", "?"),
                self.interval,
                description,
            )

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def run_once(self) -> bool:
        """One checkpoint attempt; True when a checkpoint was taken."""
        wal = self.database.wal
        if wal is None or wal.in_transaction:
            return False
        if wal.tail_bytes() < self.min_log_bytes:
            return False
        return self.database.checkpoint()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                if self.run_once():
                    self.cycles += 1
                    self._runs_metric.inc()
                self._record_outcome(None)
            except Exception as error:  # keep the loop alive; surface it
                self._record_outcome(error)

    def start(self) -> "CheckpointWorker":
        if self.running:
            raise WalError("checkpoint worker already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-checkpoint-worker", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, wait: bool = True) -> None:
        self._stop.set()
        thread = self._thread
        if wait and thread is not None:
            thread.join(timeout=max(self.interval, 1.0) + 5.0)
        self._thread = None
