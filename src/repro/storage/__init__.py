"""An in-memory database substrate built on the extended relational model.

Tables (:mod:`repro.storage.table`) define updates through the extended
algebra exactly as Section 7 prescribes; the catalog and database facade
(:mod:`repro.storage.catalog`, :mod:`repro.storage.database`) add naming,
foreign keys and QUEL querying; hash indexes (:mod:`repro.storage.index`)
realise the paper's "combinatorial hashing" remark; and
:mod:`repro.storage.schema_evolution` replays the Table I → Table II
schema-change story.
"""

from .index import HashIndex
from .table import Table
from .catalog import Catalog
from .database import Database
from .schema_evolution import EvolutionReport, add_attribute, drop_attribute, evolve

__all__ = [
    "HashIndex", "Table", "Catalog", "Database",
    "EvolutionReport", "add_attribute", "drop_attribute", "evolve",
]
