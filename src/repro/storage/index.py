"""Hash indexes over relations with null values.

Section 4 of the paper notes that "more sophisticated techniques, such as
combinatorial hashing, can provide more efficient solutions" for the set
operations and for reduction to minimal form.  The storage layer keeps the
simplest useful realisation of that remark: a hash index on a set of
attributes, mapping each *total* index-key value to the rows carrying it.

Rows that are null on any indexed attribute are kept in a separate
"unindexed" bucket: an index can accelerate equality probes for known
values, but the information ordering means a null row can still subsume or
be subsumed regardless of the probe value, so scans that care about
x-membership must also visit the unindexed bucket.  The index API makes
that explicit (:meth:`HashIndex.probe` returns both parts).
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.nulls import is_ni
from ..core.tuples import XTuple

#: Shared empty result for misses, so probes never allocate.
_EMPTY: AbstractSet[XTuple] = frozenset()


class HashIndex:
    """An equality (hash) index over one or more attributes."""

    def __init__(self, attributes: Sequence[str], name: Optional[str] = None):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        if not self.attributes:
            raise ValueError("an index needs at least one attribute")
        self.name = name or f"idx({', '.join(self.attributes)})"
        self._buckets: Dict[Tuple, Set[XTuple]] = {}
        self._unindexed: Set[XTuple] = set()

    # -- keying -------------------------------------------------------------
    def _key_of(self, row: XTuple) -> Optional[Tuple]:
        values = []
        for attribute in self.attributes:
            value = row[attribute]
            if is_ni(value):
                return None
            values.append(value)
        return tuple(values)

    # -- maintenance -----------------------------------------------------------
    def insert(self, row: XTuple) -> None:
        key = self._key_of(row)
        if key is None:
            self._unindexed.add(row)
        else:
            self._buckets.setdefault(key, set()).add(row)

    def remove(self, row: XTuple) -> None:
        key = self._key_of(row)
        if key is None:
            self._unindexed.discard(row)
            return
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(row)
            if not bucket:
                del self._buckets[key]

    def bulk_add(self, rows: Iterable[XTuple]) -> None:
        """Insert a batch of rows with the per-row dispatch hoisted out.

        Equivalent to ``for row in rows: self.insert(row)``; the batch form
        binds the bucket table and key extractor once, which is what the
        storage layer's bulk-mutation paths call.
        """
        buckets = self._buckets
        unindexed = self._unindexed
        key_of = self._key_of
        for row in rows:
            key = key_of(row)
            if key is None:
                unindexed.add(row)
            else:
                bucket = buckets.get(key)
                if bucket is None:
                    bucket = buckets[key] = set()
                bucket.add(row)

    def bulk_discard(self, rows: Iterable[XTuple]) -> None:
        """Remove a batch of rows; the bulk counterpart of :meth:`remove`."""
        buckets = self._buckets
        unindexed = self._unindexed
        key_of = self._key_of
        emptied = []
        for row in rows:
            key = key_of(row)
            if key is None:
                unindexed.discard(row)
                continue
            bucket = buckets.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    emptied.append(key)
        for key in emptied:
            if key in buckets and not buckets[key]:
                del buckets[key]

    def rebuild(self, rows: Iterable[XTuple]) -> None:
        self._buckets.clear()
        self._unindexed.clear()
        self.bulk_add(rows)

    def clear(self) -> None:
        self._buckets.clear()
        self._unindexed.clear()

    # -- queries ------------------------------------------------------------------
    def lookup(self, values: Sequence) -> AbstractSet[XTuple]:
        """Rows whose indexed attributes equal *values* exactly (nulls excluded).

        Returns a **read-only view** of the live bucket (an empty
        frozenset on a miss) — no per-probe copy is made, which keeps the
        hot join/probe loops allocation-free.  Callers must not mutate the
        result; copy it (``set(...)``) before holding it across index
        mutations.
        """
        return self._buckets.get(tuple(values), _EMPTY)

    def probe(self, values: Sequence) -> Tuple[AbstractSet[XTuple], AbstractSet[XTuple]]:
        """Exact matches plus the null bucket (candidates for x-membership checks).

        Both parts are read-only views, like :meth:`lookup`.
        """
        return self.lookup(values), self._unindexed

    def unindexed_rows(self) -> AbstractSet[XTuple]:
        """Rows null on at least one indexed attribute (a read-only view)."""
        return self._unindexed

    # -- statistics ----------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values()) + len(self._unindexed)

    def distinct_keys(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:
        return (
            f"HashIndex({list(self.attributes)}, keys={len(self._buckets)}, "
            f"unindexed={len(self._unindexed)})"
        )
