"""The Database facade: catalog + updates + queries in one object.

:class:`Database` is what the examples, the QUEL evaluator and the
benchmarks hold on to.  It behaves as a mapping from relation name to
:class:`~repro.core.relation.Relation` (so it plugs straight into
:func:`repro.quel.run_query`), enforces foreign keys on inserts and
deletes, and exposes snapshot/restore so benchmarks can rerun workloads
from a fixed state.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from ..core.errors import StorageError
from ..core.nulls import is_ni
from ..core.relation import Relation, RelationSchema, RowLike
from ..core.tuples import XTuple
from ..core.xrelation import XRelation
from ..constraints.referential import ForeignKeyConstraint
from ..obs import MetricsRegistry, get_registry
from .catalog import Catalog
from .table import Table, TableConstraint


class Database(Mapping[str, Relation]):
    """An in-memory database of relations with null values."""

    def __init__(self, name: str = "db", metrics: Optional[MetricsRegistry] = None):
        self.name = name
        self.catalog = Catalog()
        # Lazily-created default Session backing the query() delegate, so
        # repeated text queries share one prepared-statement cache.
        self._session = None
        # Durability: the attached WriteAheadLog and its background
        # checkpoint worker (both None for a purely in-memory database).
        self._wal = None
        self._checkpoint_worker = None
        # Observability: the registry everything acting on this database
        # reports into.  None resolves to the process-global default at
        # access time; passing ``metrics=MetricsRegistry()`` isolates
        # this database's series (the test-suite idiom).
        self._metrics = metrics
        self._stats_hooked: set = set()

    # -- observability ---------------------------------------------------------
    @property
    def metrics(self) -> MetricsRegistry:
        """The metrics registry for this database — its own when one was
        passed to the constructor, else the process-global default.  The
        first access per registry also registers the scrape-time callback
        that refreshes the per-table stats-staleness gauges."""
        registry = self._metrics if self._metrics is not None else get_registry()
        key = id(registry)
        if key not in self._stats_hooked:
            self._stats_hooked.add(key)
            self._register_stats_gauges(registry)
        return registry

    def _register_stats_gauges(self, registry: MetricsRegistry) -> None:
        """Export every table's optimizer-statistics staleness as gauges,
        refreshed at scrape time.  The callback holds only a weakref so a
        collected database prunes itself from the registry."""
        delta_gauge = registry.gauge(
            "repro_stats_mutations_since_analyze",
            "Mutations applied to the table since its statistics were last "
            "rebuilt (the staleness delta).",
            ("database", "table"),
        )
        stale_gauge = registry.gauge(
            "repro_stats_stale",
            "1 when the table's statistics have drifted past the staleness "
            "threshold, else 0.",
            ("database", "table"),
        )
        ref = weakref.ref(self)

        def update():
            database = ref()
            if database is None:
                return False  # prune: the database is gone
            for table_name in database.catalog.table_names():
                stats = database.catalog.table(table_name).statistics
                labels = {"database": database.name, "table": table_name}
                delta_gauge.labels(**labels).set(stats.mutations_since_analyze)
                stale_gauge.labels(**labels).set(1.0 if stats.stale else 0.0)

        registry.add_callback(update)

    # -- Mapping protocol (what the QUEL analyzer consumes) ----------------------------
    def __getitem__(self, name: str) -> Relation:
        return self.catalog.table(name).relation

    def __iter__(self) -> Iterator[str]:
        return iter(self.catalog.table_names())

    def __len__(self) -> int:
        return len(self.catalog)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.catalog.has_table(name)

    # -- schema manipulation --------------------------------------------------------------
    def create_table(
        self,
        name: str,
        schema: Union[RelationSchema, Sequence[str]],
        constraints: Sequence[TableConstraint] = (),
    ) -> Table:
        return self.catalog.create_table(name, schema, constraints)

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def table_for_relation(self, relation: Relation) -> Optional[Table]:
        """The table whose stored relation *is* this object (identity), if any.

        The planner uses this to reach a range's live statistics and
        persistent indexes from the bare relation the analyzer resolved.
        """
        return self.catalog.table_for_relation(relation)

    @property
    def epoch(self) -> int:
        """The catalog/index/stats epoch (see :meth:`Catalog.epoch`).

        Sessions stamp every cached prepared plan with this value; a
        mismatch at execution time (any DDL, index change or ANALYZE since
        the plan was built) triggers a transparent re-plan.
        """
        return self.catalog.epoch

    def analyze(self) -> None:
        """Full-refresh every table's statistics (the ``ANALYZE`` verb)."""
        for table in self.catalog.tables():
            table.analyze()

    def add_foreign_key(self, owner: str, constraint: ForeignKeyConstraint) -> None:
        self.catalog.add_foreign_key(owner, constraint)

    # -- durability ---------------------------------------------------------------------------
    @property
    def wal(self):
        """The attached :class:`~repro.storage.wal.WriteAheadLog` (or None)."""
        return self._wal

    @property
    def checkpoint_worker(self):
        """The background checkpoint worker started by :meth:`attach_wal`
        (or None when durability is off / the worker was not requested)."""
        return self._checkpoint_worker

    def attach_wal(
        self,
        path: str,
        *,
        sync: str = "commit",
        group_commit: bool = True,
        checkpoint_interval: Optional[float] = None,
        checkpoint_min_log_bytes: int = 1,
    ):
        """Attach durability at *path* (a directory), recovering first.

        If the directory holds a previous incarnation — a checkpoint
        and/or a log — that state is recovered into this database (which
        must then be empty): the last checkpoint is loaded and the
        surviving log tail replayed, discarding any torn trailing record
        and any unfinished trailing transaction.  From then on every
        mutation entry point logs before applying; a checkpoint is taken
        immediately so the log restarts fresh (holding only the frame
        that binds it to that checkpoint).  With *checkpoint_interval*
        set, a background :class:`~repro.storage.wal.CheckpointWorker`
        checkpoints (and thereby resets the log) every that-many
        seconds.  ``sync="commit"`` fsyncs per autocommitted statement
        and per transaction commit; ``sync="none"`` defers flushing to
        the OS and to checkpoints.  Returns the attached log.
        """
        from .wal import CheckpointWorker, WriteAheadLog

        if self._wal is not None:
            raise StorageError(f"database {self.name!r} already has a WAL attached")
        wal = WriteAheadLog(path, sync=sync, group_commit=group_commit)
        wal.set_metrics(self.metrics)
        wal.recover_into(self)
        self._wal = wal
        self.catalog._wal = wal
        for table in self.catalog.tables():
            table._wal = wal
        # Baseline checkpoint: a fresh directory captures the current
        # state; a recovered one compacts the just-replayed tail.
        wal.checkpoint(self)
        if checkpoint_interval is not None:
            self._checkpoint_worker = CheckpointWorker(
                self,
                interval=checkpoint_interval,
                min_log_bytes=checkpoint_min_log_bytes,
            ).start()
        return wal

    @classmethod
    def open(
        cls,
        path: str,
        name: str = "db",
        *,
        sync: str = "commit",
        group_commit: bool = True,
        checkpoint_interval: Optional[float] = None,
    ) -> "Database":
        """Open (or create) a durable database at *path*.

        Equivalent to ``Database(name)`` + :meth:`attach_wal` — recovery
        happens before the first statement runs, so the returned database
        is exactly the last durable state.
        """
        database = cls(name)
        database.attach_wal(
            path,
            sync=sync,
            group_commit=group_commit,
            checkpoint_interval=checkpoint_interval,
        )
        return database

    def checkpoint(self) -> bool:
        """Serialise the whole database and truncate the log (see
        :meth:`~repro.storage.wal.WriteAheadLog.checkpoint`).  Returns
        False while a transaction group is open."""
        if self._wal is None:
            raise StorageError(f"database {self.name!r} has no WAL attached")
        return self._wal.checkpoint(self)

    def close(self) -> None:
        """Stop the checkpoint worker, take a final checkpoint, and close
        the log.  A no-op for an in-memory database."""
        if self._checkpoint_worker is not None:
            self._checkpoint_worker.stop()
            self._checkpoint_worker = None
        wal = self._wal
        if wal is not None:
            wal.checkpoint(self)
            wal.close()
            self.catalog._wal = None
            for table in self.catalog.tables():
                table._wal = None
            self._wal = None

    # -- updates with referential enforcement ------------------------------------------------
    def insert(self, table_name: str, row: RowLike) -> XTuple:
        table = self.catalog.table(table_name)
        candidate = table.relation._coerce_row(row)
        for fk in self.catalog.foreign_keys_of(table_name):
            referenced = self.catalog.table(fk.referenced_relation).relation
            fk.check_insert(table.relation, candidate, referenced)
        return table.insert(candidate)

    def insert_many(self, table_name: str, rows: Sequence[RowLike]) -> List[XTuple]:
        """Insert a batch atomically, foreign keys included.

        Referential checks run up front against a one-time index of the
        referenced keys (self-referencing keys see earlier batch rows,
        exactly as the sequential loop would); the rows are then applied
        through :meth:`Table.insert_many`, so a failure anywhere in the
        batch leaves every table untouched.
        """
        table = self.catalog.table(table_name)
        candidates = table.relation._coerce_rows(rows)
        for fk in self.catalog.foreign_keys_of(table_name):
            referenced = self.catalog.table(fk.referenced_relation).relation
            fk.check_bulk_insert(table.relation, candidates, referenced)
        return table.insert_many(candidates, _coerced=True)

    def delete_many(self, table_name: str, rows: Sequence[RowLike]) -> int:
        """Delete a batch (with (4.8) subsumption semantics) atomically.

        Each restricting foreign key indexes its referencing relation once
        (:meth:`ForeignKeyConstraint.check_bulk_delete`) instead of
        scanning it per removed row.  For a self-referencing key, rows the
        batch itself removes (including their (4.8) subsumption closure)
        do not restrict the delete — only references that survive the
        batch count, so a batch can take out a row together with all of
        its referrers.
        """
        table = self.catalog.table(table_name)
        targets = table.relation._coerce_rows(rows)
        doomed = table.dominance.bulk_probe_dominated(targets)
        for owner, fk in self.catalog.foreign_keys_referencing(table_name):
            referencing = self.catalog.table(owner).relation
            exclude = doomed if owner == table_name else frozenset()
            fk.check_bulk_delete(referencing, targets, table.relation, exclude=exclude)
        return table.delete_many(targets, _coerced=True, _doomed=doomed)

    def delete(self, table_name: str, row: RowLike) -> int:
        """Delete one row — a singleton :meth:`delete_many`, so the FK
        restrict semantics are identical: only references that survive
        the delete (and its (4.8) closure) block it."""
        return self.delete_many(table_name, [row])

    def update(self, table_name: str, old_row: RowLike, new_row: RowLike) -> XTuple:
        """Modify one row — a singleton :meth:`update_many`."""
        return self.update_many(table_name, [(old_row, new_row)])[0]

    def update_many(self, table_name: str, pairs: Sequence[tuple]) -> List[XTuple]:
        """Apply a batch of ``(old, new)`` modifications atomically.

        A modification is deletion followed by addition (Section 7), so
        foreign keys are enforced the way :class:`repro.exec.ReplaceSink`
        enforces them for the REPLACE statement: the batch rides
        :meth:`Table.update_many` (bulk (4.8) delete of the old rows plus
        the atomic checked bulk insert), then every foreign key touching
        the table — owned *and* referencing — is re-checked against the
        **post** state, since the new rows may legitimately re-satisfy
        keys the deletion removed.  Any violation restores the table's
        pre-statement rows wholesale — notably, replacing a referenced
        key out from under its referrers raises instead of silently
        orphaning them (the restrict :meth:`delete_many` applies).
        """
        table = self.catalog.table(table_name)
        olds = table.relation._coerce_rows([old for old, _ in pairs])
        news = table.relation._coerce_rows([new for _, new in pairs])
        saved = set(table.rows())
        inserted = table.update_many(list(zip(olds, news)), _coerced=True)
        try:
            self._check_update_foreign_keys(table, olds, inserted)
        except Exception:
            table.reset_rows(saved)
            raise
        return inserted

    def _check_update_foreign_keys(self, table, olds, inserted) -> None:
        """Post-state FK verification for a modification, targeted.

        Outgoing: the referenced tables are untouched by the statement,
        so only the inserted rows need checking (one indexed
        ``check_bulk_insert`` pass — a self-referencing key falls back to
        the whole-relation check, since surviving rows may have pointed
        at keys the deletion removed).  Referencing: only keys the
        statement actually removed can newly dangle, so the restrict is
        one ``check_bulk_delete`` probe over the vanished keys — never a
        whole-relation re-scan per referrer.  (A dominated row removed by
        the (4.8) closure either shares its dominator's key or is null on
        it, so probing the named old rows covers the closure.)
        """
        table_name = table.name
        for fk in self.catalog.foreign_keys_of(table_name):
            referenced = self.catalog.table(fk.referenced_relation).relation
            if referenced is table.relation:
                fk.check(table.relation, referenced)
            else:
                fk.check_bulk_insert(table.relation, inserted, referenced)
        referrers = self.catalog.foreign_keys_referencing(table_name)
        if not referrers:
            return
        stored = table.relation.tuples()
        vanished = [old for old in olds if old not in stored]
        if not vanished:
            return
        for owner, fk in referrers:
            present = set()
            for row in stored:
                key = tuple(row[a] for a in fk.referenced_attributes)
                if not any(is_ni(v) for v in key):
                    present.add(key)
            gone = []
            for old in vanished:
                key = tuple(old[a] for a in fk.referenced_attributes)
                if not any(is_ni(v) for v in key) and key not in present:
                    gone.append(old)
            if gone:
                fk.check_bulk_delete(
                    self.catalog.table(owner).relation, gone, table.relation
                )

    # -- queries --------------------------------------------------------------------------------
    def session(self):
        """This database's default :class:`~repro.api.Session` (created lazily).

        ``repro.connect(db)`` opens an independent session; this one backs
        the :meth:`query` convenience so repeated text queries share a
        prepared-statement cache.
        """
        if self._session is None:
            from ..api.session import Session
            self._session = Session(self)
        return self._session

    def query(self, text: str, params=None, strategy: Optional[str] = None):
        """Run any QUEL statement against this database.

        By default the text goes through the default session — full DML
        surface, cost-based planner, prepared-plan cache — and returns a
        :class:`~repro.api.ResultSet`.  Passing ``strategy=`` ("tuple",
        "algebra"/"plan") keeps the retrieve-only differential-oracle
        path of :func:`repro.quel.run_query`, returning its
        :class:`~repro.quel.QueryResult`.
        """
        if strategy is not None:
            from ..quel.evaluator import run_query
            return run_query(text, self, strategy=strategy, params=params)
        return self.session().execute(text, params)

    def xrelation(self, name: str) -> XRelation:
        return self.catalog.table(name).as_xrelation()

    # -- snapshots ---------------------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A cheap copy of every table's rows, index definitions *and*
        statistics.

        Each entry is ``{"rows": set of XTuple, "indexes": {name: attrs},
        "statistics": TableStatistics}`` — the index specs let
        :meth:`restore` round-trip user-created indexes instead of only
        the rows, and the statistics copy means a restored database plans
        on the estimates it had at snapshot time rather than re-derived
        ones with a freshly-reset staleness tracker.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for name in self.catalog.table_names():
            table = self.catalog.table(name)
            out[name] = {
                "rows": set(table.rows()),
                "indexes": table.index_specs(),
                "statistics": table.statistics.copy(),
            }
        return out

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Wholesale restore: each table goes through the bulk-rebuild path
        (:meth:`Table.reset_rows` — one partition pass per index, no
        per-row maintenance), its index set is reconciled with the
        snapshot's specs (indexes created since the snapshot are dropped,
        dropped ones are recreated), and its statistics are restored from
        the snapshot's copy when it carries one.

        The *catalog* is reconciled too: a table created after the
        snapshot was taken is dropped (in passes, so foreign keys between
        such tables cannot wedge the order — a created table still
        referenced by a surviving foreign key fails the restore loudly).
        Only full-format snapshots (every entry a mapping, as
        :meth:`snapshot` produces) reconcile the catalog; legacy row-set
        snapshots (``{name: set of rows}``) restore rows only, leaving
        the current indexes and any other tables in place."""
        full_format = all(isinstance(entry, Mapping) for entry in snapshot.values())
        if full_format:
            created = [
                name for name in self.catalog.table_names() if name not in snapshot
            ]
            while created:
                progressed = False
                for name in list(created):
                    try:
                        self.catalog.drop_table(name)
                    except StorageError:
                        continue
                    created.remove(name)
                    progressed = True
                if not progressed:
                    raise StorageError(
                        f"cannot restore: table(s) {created} created after the "
                        f"snapshot are referenced by surviving foreign keys"
                    )
        for name, entry in snapshot.items():
            table = self.catalog.table(name)
            if not isinstance(entry, Mapping):
                table.reset_rows(entry)
                continue
            specs = entry.get("indexes", {})
            for index_name in list(table.indexes):
                spec = specs.get(index_name)
                if spec is None or tuple(spec) != table.indexes[index_name].attributes:
                    table.drop_index(index_name)
            table.reset_rows(entry["rows"], statistics=entry.get("statistics"))
            for index_name, attributes in specs.items():
                if index_name not in table.indexes:
                    table.create_index(attributes, name=index_name)

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={self.catalog.table_names()})"
