"""Named views over the generalised algebra (the paper's references [26, 27]).

Expression trees over x-relations (:mod:`repro.views.expressions`) and a
view catalog with dependency tracking, stacking and materialisation
(:mod:`repro.views.catalog`), including the union-join-based mapping of
network set types to relations.
"""

from .expressions import (
    Base,
    Difference,
    Divide,
    Expression,
    Join,
    Product,
    Project,
    Rename,
    Select,
    SelectAttributes,
    Union_,
    UnionJoin,
    XIntersection,
    base,
)
from .catalog import View, ViewCatalog, network_to_relational

__all__ = [
    "Base", "Difference", "Divide", "Expression", "Join", "Product", "Project",
    "Rename", "Select", "SelectAttributes", "Union_", "UnionJoin", "XIntersection", "base",
    "View", "ViewCatalog", "network_to_relational",
]
