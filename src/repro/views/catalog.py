"""Named views over the generalised algebra, with dependency tracking.

References [26, 27] of the paper are Zaniolo's own work on supporting
relational *views* (in particular over network schemas), which is one of
the applications the introduction says null values make possible: a view
that outer-joins record types preserves the records that have no partner,
padding them with nulls instead of dropping them.  This module provides
the minimal machinery to make those views first-class:

* :class:`View` — a named algebra expression with a docstring;
* :class:`ViewCatalog` — registration, lookup, dependency queries
  ("which views read EMP?"), evaluation against any database mapping, and
  optional materialisation with staleness tracking;
* :func:`network_to_relational` — the canonical example from [26]: an
  owner record type and a member record type linked by a set type are
  presented as a single relation via the union-join, losing no records.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..core.errors import StorageError
from ..core.relation import Relation
from ..core.xrelation import XRelation
from .expressions import Base, DatabaseLike, Expression, UnionJoin


class View:
    """A named, documented algebra expression."""

    def __init__(self, name: str, expression: Expression, description: str = ""):
        if not name:
            raise StorageError("a view needs a non-empty name")
        self.name = name
        self.expression = expression
        self.description = description

    def references(self) -> Set[str]:
        return self.expression.references()

    def evaluate(self, database: DatabaseLike) -> XRelation:
        return self.expression.evaluate(database)

    def explain(self) -> str:
        return self.expression.explain()

    def __repr__(self) -> str:
        return f"View({self.name!r}, reads={sorted(self.references())})"


class ViewCatalog:
    """A registry of views with evaluation, dependencies and materialisation."""

    def __init__(self) -> None:
        self._views: Dict[str, View] = {}
        self._materialised: Dict[str, XRelation] = {}

    # -- registration -----------------------------------------------------------
    def define(self, name: str, expression: Expression, description: str = "") -> View:
        if name in self._views:
            raise StorageError(f"view {name!r} is already defined")
        view = View(name, expression, description)
        self._views[name] = view
        return view

    def drop(self, name: str) -> None:
        if name not in self._views:
            raise StorageError(f"no view named {name!r}")
        dependants = [v.name for v in self._views.values() if name in v.references()]
        if dependants:
            raise StorageError(f"cannot drop view {name!r}: referenced by {dependants}")
        del self._views[name]
        self._materialised.pop(name, None)

    def view(self, name: str) -> View:
        try:
            return self._views[name]
        except KeyError:
            raise StorageError(
                f"no view named {name!r}; available: {', '.join(sorted(self._views))}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._views)

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def __len__(self) -> int:
        return len(self._views)

    # -- dependencies --------------------------------------------------------------
    def views_reading(self, relation_name: str) -> List[View]:
        """The views whose expressions read the given base relation or view."""
        return [view for view in self._views.values() if relation_name in view.references()]

    # -- evaluation ------------------------------------------------------------------
    def _resolving_database(self, database: DatabaseLike) -> Dict[str, Union[Relation, XRelation]]:
        """Base relations plus already-defined views, so views can stack."""
        resolved: Dict[str, Union[Relation, XRelation]] = dict(database)
        # Resolve views iteratively; views may reference other views as long
        # as there is no cycle (guarded by a pass limit).
        remaining = dict(self._views)
        for _ in range(len(remaining) + 1):
            progressed = False
            for name, view in list(remaining.items()):
                if all(ref in resolved for ref in view.references()):
                    resolved[name] = view.expression.evaluate(resolved)
                    del remaining[name]
                    progressed = True
            if not remaining:
                break
            if not progressed:
                unresolved = sorted(remaining)
                raise StorageError(f"cyclic or unresolvable view definitions: {unresolved}")
        return resolved

    def evaluate(self, name: str, database: DatabaseLike) -> XRelation:
        view = self.view(name)
        resolved = self._resolving_database(database)
        return resolved[name] if name in resolved else view.evaluate(resolved)

    # -- materialisation -----------------------------------------------------------------
    def materialise(self, name: str, database: DatabaseLike) -> XRelation:
        result = self.evaluate(name, database)
        self._materialised[name] = result
        return result

    def materialised(self, name: str) -> Optional[XRelation]:
        return self._materialised.get(name)

    def is_stale(self, name: str, database: DatabaseLike) -> bool:
        """True when re-evaluating the view would change its materialisation."""
        cached = self._materialised.get(name)
        if cached is None:
            return True
        return self.evaluate(name, database) != cached

    def invalidate_readers_of(self, relation_name: str) -> List[str]:
        """Drop materialisations of every view reading *relation_name*."""
        invalidated = []
        for view in self.views_reading(relation_name):
            if view.name in self._materialised:
                del self._materialised[view.name]
                invalidated.append(view.name)
        return sorted(invalidated)

    def __repr__(self) -> str:
        return f"ViewCatalog(views={self.names()}, materialised={sorted(self._materialised)})"


def network_to_relational(
    owner: str,
    member: str,
    link: Sequence[str],
    name: Optional[str] = None,
) -> View:
    """The [26]-style mapping of a network set type to a single relation.

    The owner and member record types are combined with the information-
    preserving union-join on the link attributes: owners without members
    and members without owners survive, padded with nulls, instead of
    silently disappearing as they would under an inner join.
    """
    expression = UnionJoin(Base(owner), Base(member), on=tuple(link))
    view_name = name or f"{owner}_{member}_set"
    return View(
        view_name,
        expression,
        description=(
            f"Network set type {owner} ↔ {member} presented relationally via the "
            f"union-join on {list(link)}; information-preserving by construction."
        ),
    )
