"""Relational-algebra expression trees over x-relations.

The paper closes Section 1 by asking for "a complete and consistent
framework" into which the new null-based constructs — information-
preserving (union-)joins, views over network schemas [Zaniolo 1977/1979],
universal-relation interfaces — can be integrated.  This module provides
the integration point: a small, composable expression language over the
generalised algebra, so that views can be *named, stored, analysed and
re-evaluated* instead of being one-off function calls.

An expression is a tree of nodes (:class:`Base`, :class:`Select`,
:class:`Project`, :class:`Product`, :class:`Join`, :class:`UnionJoin`,
:class:`Union`, :class:`Difference`, :class:`XIntersection`,
:class:`Divide`, :class:`Rename`).  Nodes know how to

* ``evaluate(database)`` — produce the x-relation, resolving base names
  against any mapping of relation names (``repro.storage.Database`` works);
* ``references()`` — list the base relations they read (used by the view
  catalog for dependency tracking and invalidation);
* ``explain()`` — print themselves as an indented operator tree.

The expression layer is intentionally thin: every operator delegates to
:mod:`repro.core.algebra` / :mod:`repro.core.setops`, so all null
semantics stay in one place.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..core import algebra, setops
from ..core.errors import AlgebraError, StorageError
from ..core.relation import Relation
from ..core.xrelation import XRelation, as_xrelation


DatabaseLike = Mapping[str, Union[Relation, XRelation]]


class Expression:
    """Base class of algebra expression nodes."""

    def evaluate(self, database: DatabaseLike) -> XRelation:
        raise NotImplementedError

    def references(self) -> Set[str]:
        """Names of the base relations this expression reads."""
        raise NotImplementedError

    def children(self) -> Tuple["Expression", ...]:
        return ()

    def explain(self, indent: int = 0) -> str:
        lines = [("  " * indent) + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__

    # -- composition sugar -------------------------------------------------------
    def select(self, attribute: str, op: str, constant: Any) -> "Select":
        return Select(self, attribute, op, constant)

    def where_attrs(self, left: str, op: str, right: str) -> "SelectAttributes":
        return SelectAttributes(self, left, op, right)

    def project(self, attributes: Sequence[str]) -> "Project":
        return Project(self, attributes)

    def rename(self, mapping: Mapping[str, str]) -> "Rename":
        return Rename(self, mapping)

    def product(self, other: "Expression") -> "Product":
        return Product(self, other)

    def join(self, other: "Expression", on: Sequence[str]) -> "Join":
        return Join(self, other, on)

    def union_join(self, other: "Expression", on: Sequence[str]) -> "UnionJoin":
        return UnionJoin(self, other, on)

    def union(self, other: "Expression") -> "Union_":
        return Union_(self, other)

    def difference(self, other: "Expression") -> "Difference":
        return Difference(self, other)

    def x_intersection(self, other: "Expression") -> "XIntersection":
        return XIntersection(self, other)

    def divide(self, other: "Expression", by: Sequence[str]) -> "Divide":
        return Divide(self, other, by)


class Base(Expression):
    """A reference to a named base relation (or another view's name)."""

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, database: DatabaseLike) -> XRelation:
        if self.name not in database:
            raise StorageError(f"unknown relation {self.name!r} while evaluating a view")
        return as_xrelation(database[self.name])

    def references(self) -> Set[str]:
        return {self.name}

    def describe(self) -> str:
        return f"Base({self.name})"


class _Unary(Expression):
    def __init__(self, child: Expression):
        self.child = child

    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def references(self) -> Set[str]:
        return self.child.references()


class _Binary(Expression):
    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def references(self) -> Set[str]:
        return self.left.references() | self.right.references()


class Select(_Unary):
    def __init__(self, child: Expression, attribute: str, op: str, constant: Any):
        super().__init__(child)
        self.attribute, self.op, self.constant = attribute, op, constant

    def evaluate(self, database: DatabaseLike) -> XRelation:
        return algebra.select_constant(self.child.evaluate(database), self.attribute, self.op, self.constant)

    def describe(self) -> str:
        return f"Select({self.attribute} {self.op} {self.constant!r})"


class SelectAttributes(_Unary):
    def __init__(self, child: Expression, left: str, op: str, right: str):
        super().__init__(child)
        self.left_attr, self.op, self.right_attr = left, op, right

    def evaluate(self, database: DatabaseLike) -> XRelation:
        return algebra.select_attributes(self.child.evaluate(database), self.left_attr, self.op, self.right_attr)

    def describe(self) -> str:
        return f"Select({self.left_attr} {self.op} {self.right_attr})"


class Project(_Unary):
    def __init__(self, child: Expression, attributes: Sequence[str]):
        super().__init__(child)
        self.attributes = tuple(attributes)

    def evaluate(self, database: DatabaseLike) -> XRelation:
        return algebra.project(self.child.evaluate(database), self.attributes)

    def describe(self) -> str:
        return f"Project({', '.join(self.attributes)})"


class Rename(_Unary):
    def __init__(self, child: Expression, mapping: Mapping[str, str]):
        super().__init__(child)
        self.mapping = dict(mapping)

    def evaluate(self, database: DatabaseLike) -> XRelation:
        return algebra.rename(self.child.evaluate(database), self.mapping)

    def describe(self) -> str:
        inner = ", ".join(f"{a}→{b}" for a, b in sorted(self.mapping.items()))
        return f"Rename({inner})"


class Product(_Binary):
    def evaluate(self, database: DatabaseLike) -> XRelation:
        return algebra.product(self.left.evaluate(database), self.right.evaluate(database))


class Join(_Binary):
    def __init__(self, left: Expression, right: Expression, on: Sequence[str]):
        super().__init__(left, right)
        self.on = tuple(on)

    def evaluate(self, database: DatabaseLike) -> XRelation:
        return algebra.join_on(self.left.evaluate(database), self.right.evaluate(database), self.on)

    def describe(self) -> str:
        return f"Join(on={list(self.on)})"


class UnionJoin(_Binary):
    def __init__(self, left: Expression, right: Expression, on: Sequence[str]):
        super().__init__(left, right)
        self.on = tuple(on)

    def evaluate(self, database: DatabaseLike) -> XRelation:
        return algebra.union_join(self.left.evaluate(database), self.right.evaluate(database), self.on)

    def describe(self) -> str:
        return f"UnionJoin(on={list(self.on)})"


class Union_(_Binary):
    def evaluate(self, database: DatabaseLike) -> XRelation:
        return self.left.evaluate(database) | self.right.evaluate(database)

    def describe(self) -> str:
        return "Union"


class Difference(_Binary):
    def evaluate(self, database: DatabaseLike) -> XRelation:
        return self.left.evaluate(database) - self.right.evaluate(database)


class XIntersection(_Binary):
    def evaluate(self, database: DatabaseLike) -> XRelation:
        return self.left.evaluate(database) & self.right.evaluate(database)


class Divide(_Binary):
    def __init__(self, left: Expression, right: Expression, by: Sequence[str]):
        super().__init__(left, right)
        self.by = tuple(by)

    def evaluate(self, database: DatabaseLike) -> XRelation:
        return algebra.divide(self.left.evaluate(database), self.right.evaluate(database), self.by)

    def describe(self) -> str:
        return f"Divide(by={list(self.by)})"


def base(name: str) -> Base:
    """Convenience constructor: ``base("EMP").select(...).project(...)``."""
    return Base(name)
