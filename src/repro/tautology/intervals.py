"""Interval reasoning over inequalities on null attributes (Appendix).

The Appendix points out that the propositional view is not enough: the
clause ``t.A > 3 ∧ (t.B < 12 ∨ t.B > t.A)`` is a tautology for every tuple
with a non-null ``A`` in ``3 < A < 12`` regardless of the value of a null
``B`` — detecting this requires the evaluator to "understand simple
mathematics".  This module provides that understanding for the common case
where every comparison involving a given null attribute compares it
against a *constant* (after partial evaluation against the binding, the
other side is known).

The technique is exhaustive case analysis over *regions*: the constants
mentioned in the comparisons split the number line into finitely many
regions (each constant itself, and the open gaps between consecutive
constants, plus the two unbounded ends); within a region every comparison
against a constant has a fixed truth value, so evaluating the clause at
one representative per region decides it for every possible value of the
null.  With several null attributes the Cartesian product of their region
sets is enumerated.

The analysis is exact for integer- or real-valued attributes whose
comparisons are all against constants.  Comparisons between two nulls (or
a null and another tuple's null) are outside its scope and make
:func:`analyse` report ``supported=False``; the detector then falls back
to brute-force substitution over explicit finite domains.
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Real
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.errors import TautologyError
from ..core.nulls import is_null
from ..core.query import AttributeRef, Comparison, Predicate
from ..core.threevalued import comparison_function
from ..core.tuples import XTuple


class RegionSample:
    """A representative value for one region of the number line."""

    __slots__ = ("value", "description")

    def __init__(self, value, description: str):
        self.value = value
        self.description = description

    def __repr__(self) -> str:
        return f"RegionSample({self.value!r}, {self.description})"


def _region_samples(constants: Sequence[Real], integer_only: bool) -> List[RegionSample]:
    """Representative values for every region induced by the given constants."""
    if not constants:
        return [RegionSample(0, "anywhere")]
    ordered = sorted(set(Fraction(c) if not isinstance(c, int) else Fraction(c) for c in constants))
    samples: List[RegionSample] = []
    # Below the smallest constant.
    low = ordered[0] - 1
    samples.append(RegionSample(_concretise(low, integer_only), f"< {ordered[0]}"))
    for i, constant in enumerate(ordered):
        samples.append(RegionSample(_concretise(constant, integer_only), f"= {constant}"))
        if i + 1 < len(ordered):
            midpoint = (constant + ordered[i + 1]) / 2
            if integer_only:
                gap = ordered[i + 1] - constant
                if gap > 1:
                    samples.append(
                        RegionSample(_concretise(constant + 1, integer_only), f"({constant}, {ordered[i+1]})")
                    )
            else:
                samples.append(RegionSample(_concretise(midpoint, integer_only), f"({constant}, {ordered[i+1]})"))
    high = ordered[-1] + 1
    samples.append(RegionSample(_concretise(high, integer_only), f"> {ordered[-1]}"))
    return samples


def _concretise(value: Fraction, integer_only: bool):
    if integer_only:
        return int(value)
    if value.denominator == 1:
        return int(value)
    return float(value)


class IntervalAnalysis:
    """Outcome of the interval-based tautology analysis for one binding."""

    def __init__(
        self,
        supported: bool,
        is_tautology: Optional[bool],
        null_terms: Sequence[str],
        regions_examined: int,
        reason: str = "",
    ):
        self.supported = supported
        self.is_tautology = is_tautology
        self.null_terms = tuple(null_terms)
        self.regions_examined = regions_examined
        self.reason = reason

    def __repr__(self) -> str:
        return (
            f"IntervalAnalysis(supported={self.supported}, tautology={self.is_tautology}, "
            f"nulls={list(self.null_terms)}, regions={self.regions_examined})"
        )


def _null_terms_of(predicate: Predicate, binding: Mapping[str, XTuple]) -> Dict[str, AttributeRef]:
    """The attribute references whose value is null under the binding."""
    terms: Dict[str, AttributeRef] = {}
    for comparison in predicate.comparisons():
        for term in (comparison.left, comparison.right):
            if isinstance(term, AttributeRef) and is_null(term.value(binding)):
                terms[f"{term.variable}.{term.attribute}"] = term
    return terms


def analyse(
    predicate: Predicate,
    binding: Mapping[str, XTuple],
    integer_attributes: bool = True,
    max_regions: int = 4096,
) -> IntervalAnalysis:
    """Decide whether *predicate* is a tautology in its null attributes.

    The predicate is considered as a function of the null attribute
    references only (the non-null ones are fixed by the binding).  Returns
    ``supported=False`` when some comparison relates two null terms, when a
    null term is compared with a non-numeric constant under an order
    operator, or when the region product exceeds *max_regions*.
    """
    null_terms = _null_terms_of(predicate, binding)
    if not null_terms:
        truth = predicate.evaluate(binding)
        return IntervalAnalysis(True, truth.is_true(), [], 0, "no nulls: direct evaluation")

    # Collect, per null term, the constants it is compared against.
    constants: Dict[str, Set] = {key: set() for key in null_terms}
    equality_only: Dict[str, bool] = {key: True for key in null_terms}
    for comparison in predicate.comparisons():
        left_null = isinstance(comparison.left, AttributeRef) and is_null(comparison.left.value(binding))
        right_null = isinstance(comparison.right, AttributeRef) and is_null(comparison.right.value(binding))
        if left_null and right_null:
            return IntervalAnalysis(
                False, None, null_terms, 0, "comparison between two null terms"
            )
        if not (left_null or right_null):
            continue
        null_term = comparison.left if left_null else comparison.right
        other = comparison.right if left_null else comparison.left
        other_value = other.value(binding)
        key = f"{null_term.variable}.{null_term.attribute}"
        if comparison.op in ("=", "==", "!=", "<>", "≠"):
            constants[key].add(other_value)
            continue
        if not isinstance(other_value, Real) or isinstance(other_value, bool):
            return IntervalAnalysis(
                False, None, null_terms, 0,
                f"order comparison of {key} against non-numeric {other_value!r}",
            )
        equality_only[key] = False
        constants[key].add(other_value)

    # Region samples per null term.  Equality-only terms get "each mentioned
    # value plus one fresh value"; numeric terms get the full region split.
    samples_per_term: Dict[str, List[RegionSample]] = {}
    for key in null_terms:
        values = constants[key]
        numeric = all(isinstance(v, Real) and not isinstance(v, bool) for v in values)
        if not values:
            samples_per_term[key] = [RegionSample("⊥fresh", "anything")]
        elif equality_only[key] and not numeric:
            samples_per_term[key] = [RegionSample(v, f"= {v!r}") for v in values] + [
                RegionSample("⊥fresh", "different from all mentioned values")
            ]
        elif numeric:
            samples_per_term[key] = _region_samples(sorted(values), integer_attributes)
        else:
            return IntervalAnalysis(
                False, None, null_terms, 0,
                f"mixed numeric / non-numeric comparisons for {key}",
            )

    total_regions = 1
    for samples in samples_per_term.values():
        total_regions *= len(samples)
    if total_regions > max_regions:
        return IntervalAnalysis(False, None, null_terms, 0, "region product too large")

    # Evaluate the predicate classically at every region combination.
    keys = list(samples_per_term)
    from itertools import product as iter_product

    def evaluate_with(substitution: Mapping[str, object]) -> bool:
        def term_value(term):
            if isinstance(term, AttributeRef):
                key = f"{term.variable}.{term.attribute}"
                if key in substitution:
                    return substitution[key]
            return term.value(binding)

        def recurse(node: Predicate) -> bool:
            from ..core.query import And, Not, Or, TruthConstant
            if isinstance(node, Comparison):
                func = comparison_function(node.op)
                left = term_value(node.left)
                right = term_value(node.right)
                try:
                    return bool(func(left, right))
                except TypeError:
                    # Fresh symbolic value compared by order against a number:
                    # treat as not satisfying, the conservative choice.
                    return node.op in ("!=", "<>", "≠")
            if isinstance(node, And):
                return all(recurse(o) for o in node.operands)
            if isinstance(node, Or):
                return any(recurse(o) for o in node.operands)
            if isinstance(node, Not):
                return not recurse(node.operand)
            if isinstance(node, TruthConstant):
                return node.truth.is_true()
            raise TautologyError(f"unsupported predicate node {node!r}")

        return recurse(predicate)

    examined = 0
    for combo in iter_product(*[samples_per_term[k] for k in keys]):
        substitution = {k: sample.value for k, sample in zip(keys, combo)}
        examined += 1
        if not evaluate_with(substitution):
            return IntervalAnalysis(True, False, null_terms, examined, "counterexample region found")
    return IntervalAnalysis(True, True, null_terms, examined, "true in every region")
