"""Propositional formulas and the abstraction of query predicates.

The Appendix of the paper analyses what it would take to execute queries
*correctly* under the "unknown" interpretation: a set of tuples must be
included in the answer when the where clause is true under **every** legal
substitution for its nulls — i.e. when the clause, partially evaluated on
the tuples, is a *tautology*.  Even the propositional core of this problem
is co-NP-hard, and the full problem additionally needs arithmetic over
inequalities and knowledge of the schema's integrity constraints.

This module provides

* a tiny propositional-formula AST (:class:`Var`, :class:`NotF`,
  :class:`AndF`, :class:`OrF`, :class:`Const`) with evaluation,
  negation-normal-form and CNF conversion;
* :func:`abstract_predicate` — partial evaluation of a query
  :class:`~repro.core.query.Predicate` against a binding: comparisons whose
  operands are all known become constants, comparisons touching at least
  one null become propositional variables (one per distinct comparison).

The propositional abstraction is *sound but incomplete* for tautology
detection: if the abstraction is a propositional tautology, the original
clause is certainly true under every substitution; but clauses that are
tautologies only because of arithmetic relationships between atoms (e.g.
``A > 3 ∨ A ≤ 3``) are missed.  The interval analysis in
:mod:`repro.tautology.intervals` and the brute-force substitution in
:mod:`repro.tautology.detector` close that gap at increasing cost — which
is the Appendix's argument made executable.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.errors import TautologyError
from ..core.nulls import is_null
from ..core.query import And, Comparison, Not, Or, Predicate, TruthConstant
from ..core.tuples import XTuple


# ---------------------------------------------------------------------------
# Formula AST
# ---------------------------------------------------------------------------

class Formula:
    """Base class of propositional formulas."""

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        raise NotImplementedError

    def variables(self) -> Set[str]:
        raise NotImplementedError

    def negate(self) -> "Formula":
        return NotF(self)

    def __and__(self, other: "Formula") -> "Formula":
        return AndF(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return OrF(self, other)

    def __invert__(self) -> "Formula":
        return self.negate()


class Const(Formula):
    """A propositional constant (⊤ or ⊥)."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = bool(value)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.value

    def variables(self) -> Set[str]:
        return set()

    def __repr__(self) -> str:
        return "⊤" if self.value else "⊥"


TOP = Const(True)
BOTTOM = Const(False)


class Var(Formula):
    """A propositional variable."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        try:
            return bool(assignment[self.name])
        except KeyError:
            raise TautologyError(f"no truth value assigned to variable {self.name!r}") from None

    def variables(self) -> Set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return self.name


class NotF(Formula):
    __slots__ = ("operand",)

    def __init__(self, operand: Formula):
        self.operand = operand

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def variables(self) -> Set[str]:
        return self.operand.variables()

    def __repr__(self) -> str:
        return f"¬{self.operand!r}"


class AndF(Formula):
    __slots__ = ("operands",)

    def __init__(self, *operands: Formula):
        self.operands = tuple(operands)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return all(o.evaluate(assignment) for o in self.operands)

    def variables(self) -> Set[str]:
        result: Set[str] = set()
        for o in self.operands:
            result |= o.variables()
        return result

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(o) for o in self.operands) + ")"


class OrF(Formula):
    __slots__ = ("operands",)

    def __init__(self, *operands: Formula):
        self.operands = tuple(operands)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return any(o.evaluate(assignment) for o in self.operands)

    def variables(self) -> Set[str]:
        result: Set[str] = set()
        for o in self.operands:
            result |= o.variables()
        return result

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(o) for o in self.operands) + ")"


# ---------------------------------------------------------------------------
# Normal forms
# ---------------------------------------------------------------------------

def to_nnf(formula: Formula, negated: bool = False) -> Formula:
    """Negation normal form: push negations onto variables/constants."""
    if isinstance(formula, Const):
        return Const(formula.value ^ negated)
    if isinstance(formula, Var):
        return NotF(formula) if negated else formula
    if isinstance(formula, NotF):
        return to_nnf(formula.operand, not negated)
    if isinstance(formula, AndF):
        children = [to_nnf(o, negated) for o in formula.operands]
        return OrF(*children) if negated else AndF(*children)
    if isinstance(formula, OrF):
        children = [to_nnf(o, negated) for o in formula.operands]
        return AndF(*children) if negated else OrF(*children)
    raise TautologyError(f"unknown formula node {formula!r}")


#: A literal: (variable name, polarity).  A clause is a frozenset of literals.
Literal = Tuple[str, bool]
Clause = FrozenSet[Literal]


def to_cnf(formula: Formula) -> List[Clause]:
    """Convert a formula to CNF clauses by distribution over its NNF.

    Exponential in the worst case, which is fine for where-clause-sized
    formulas; the DPLL layer consumes the result.  Constant ⊤ conjuncts
    and clauses containing complementary literals are dropped; a constant
    ⊥ conjunct yields the single empty clause (unsatisfiable).
    """
    nnf = to_nnf(formula)

    def cnf(node: Formula) -> List[Set[Literal]]:
        if isinstance(node, Const):
            return [] if node.value else [set()]
        if isinstance(node, Var):
            return [{(node.name, True)}]
        if isinstance(node, NotF):
            operand = node.operand
            if not isinstance(operand, Var):
                raise TautologyError("NNF conversion left a non-literal negation")
            return [{(operand.name, False)}]
        if isinstance(node, AndF):
            clauses: List[Set[Literal]] = []
            for child in node.operands:
                clauses.extend(cnf(child))
            return clauses
        if isinstance(node, OrF):
            if not node.operands:
                return [set()]
            result: List[Set[Literal]] = [set()]
            for child in node.operands:
                child_clauses = cnf(child)
                if not child_clauses:  # child is ⊤ → whole disjunction is ⊤
                    return []
                result = [r | c for r in result for c in child_clauses]
            return result
        raise TautologyError(f"unknown formula node {node!r}")

    clauses: List[Clause] = []
    for clause in cnf(nnf):
        names = {}
        tautological = False
        for name, polarity in clause:
            if name in names and names[name] != polarity:
                tautological = True
                break
            names[name] = polarity
        if not tautological:
            clauses.append(frozenset(clause))
    return clauses


def truth_table_tautology(formula: Formula, max_variables: int = 20) -> bool:
    """Decide tautology by exhaustive truth-table enumeration (2^n)."""
    variables = sorted(formula.variables())
    if len(variables) > max_variables:
        raise TautologyError(
            f"{len(variables)} propositional variables exceed the truth-table cap"
        )
    for mask in range(2 ** len(variables)):
        assignment = {v: bool(mask & (1 << i)) for i, v in enumerate(variables)}
        if not formula.evaluate(assignment):
            return False
    return True


# ---------------------------------------------------------------------------
# Abstraction of query predicates
# ---------------------------------------------------------------------------

class Abstraction:
    """The result of abstracting a predicate against a binding.

    Attributes
    ----------
    formula:
        The propositional formula; known comparisons appear as constants.
    atoms:
        Mapping from propositional variable name to the underlying
        :class:`Comparison` (with at least one null operand).
    """

    def __init__(self, formula: Formula, atoms: Dict[str, Comparison]):
        self.formula = formula
        self.atoms = atoms

    def __repr__(self) -> str:
        return f"Abstraction({self.formula!r}, atoms={list(self.atoms)})"


def abstract_predicate(predicate: Predicate, binding: Mapping[str, XTuple]) -> Abstraction:
    """Partially evaluate *predicate* against *binding*.

    Comparisons whose two operands are non-null under the binding are
    folded to propositional constants; the others become variables, with
    syntactically identical comparisons sharing a variable.
    """
    atoms: Dict[str, Comparison] = {}
    atom_names: Dict[Tuple[object, str, object], str] = {}

    def recurse(node: Predicate) -> Formula:
        if isinstance(node, TruthConstant):
            if node.truth.is_true():
                return TOP
            if node.truth.is_false():
                return BOTTOM
            raise TautologyError("cannot abstract an ni truth constant")
        if isinstance(node, Comparison):
            left = node.left.value(binding)
            right = node.right.value(binding)
            if not is_null(left) and not is_null(right):
                from ..core.threevalued import compare
                return TOP if compare(left, node.op, right).is_true() else BOTTOM
            key = (repr(node.left), node.op, repr(node.right))
            if key not in atom_names:
                name = f"p{len(atom_names)}"
                atom_names[key] = name
                atoms[name] = node
            return Var(atom_names[key])
        if isinstance(node, And):
            return AndF(*[recurse(o) for o in node.operands])
        if isinstance(node, Or):
            return OrF(*[recurse(o) for o in node.operands])
        if isinstance(node, Not):
            return NotF(recurse(node.operand))
        raise TautologyError(f"cannot abstract predicate node {node!r}")

    return Abstraction(recurse(predicate), atoms)
