"""Tautology detection and "unknown"-interpretation query evaluation (Appendix).

Under the "unknown" interpretation the correct lower bound of a query must
include every set of tuples for which the where clause is true under
*every legal substitution* of the nulls — i.e. every set of tuples that
"defines a tautology" for the query.  The Appendix argues that deciding
this is expensive in three escalating ways:

1. even the propositional core is co-NP-hard;
2. inequalities force the system to "understand simple mathematics";
3. integrity constraints in the schema (an employee cannot manage
   himself) force it to reason about the constraints too — and constraints
   enforced by procedures can never be interpreted.

:class:`TautologyDetector` implements the three analysis layers the
Appendix sketches, in increasing cost and decreasing generality of the
conclusions they can reach on their own:

* **propositional** — abstract the clause (comparisons touching nulls
  become variables) and check propositional tautology with DPLL; sound
  but misses arithmetic tautologies;
* **interval** — exhaustive region analysis for nulls compared against
  constants; exact in its supported fragment;
* **brute force** — substitute every legal combination of domain values
  (restricted by the declared integrity constraints); exact but
  exponential, and only possible when the domains are finite and supplied.

:func:`evaluate_unknown_lower_bound` then uses the detector to compute the
correct certain answer under the unknown interpretation — the expensive
alternative whose cost experiment E11 charts against the paper's cheap ni
evaluation (which simply never needs any of this machinery).
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import TautologyError
from ..core.nulls import is_null
from ..core.query import AttributeRef, Comparison, Predicate, Query
from ..core.relation import Relation
from ..core.tuples import XTuple
from ..core.xrelation import XRelation
from .dpll import DPLLStatistics, is_tautology as dpll_is_tautology
from .intervals import IntervalAnalysis, analyse as interval_analyse
from .propositional import Abstraction, abstract_predicate, truth_table_tautology


#: A schema-level integrity constraint: a predicate over the same binding
#: shape as the query's where clause.  A substitution is *legal* only when
#: every constraint evaluates to TRUE on the substituted binding.
ConstraintPredicate = Callable[[Mapping[str, XTuple]], bool]


class DetectionResult:
    """The verdict of one tautology analysis."""

    def __init__(
        self,
        is_tautology: Optional[bool],
        method: str,
        cost: int,
        details: str = "",
    ):
        #: True / False when decided; None when the method could not decide.
        self.is_tautology = is_tautology
        #: Which layer produced the verdict: "ground", "propositional",
        #: "interval", "brute-force" or "undecided".
        self.method = method
        #: A method-specific work counter (assignments, regions, worlds...).
        self.cost = cost
        self.details = details

    def __repr__(self) -> str:
        return (
            f"DetectionResult({self.is_tautology}, method={self.method!r}, "
            f"cost={self.cost}, {self.details})"
        )


class TautologyDetector:
    """Decides whether a binding defines a tautology for a where clause.

    Parameters
    ----------
    domains:
        Mapping from attribute name to the finite sequence of legal values
        used by the brute-force layer.  Attributes without an entry make
        brute force unavailable for bindings whose nulls touch them.
    constraints:
        Schema integrity constraints restricting legal substitutions
        (brute-force layer only — exactly the Appendix's point that the
        symbolic layers would have to "understand" them).
    integer_attributes:
        Whether order comparisons range over integers (region sampling
        then avoids non-integral representatives).
    use_dpll:
        Use DPLL for the propositional layer (otherwise a truth table).
    """

    def __init__(
        self,
        domains: Optional[Mapping[str, Sequence[Any]]] = None,
        constraints: Sequence[ConstraintPredicate] = (),
        integer_attributes: bool = True,
        use_dpll: bool = True,
    ):
        self.domains = dict(domains or {})
        self.constraints = tuple(constraints)
        self.integer_attributes = integer_attributes
        self.use_dpll = use_dpll

    # -- the three analysis layers ------------------------------------------------
    def propositional_check(self, predicate: Predicate, binding: Mapping[str, XTuple]) -> DetectionResult:
        """Layer 1: propositional abstraction + DPLL (or truth table)."""
        abstraction = abstract_predicate(predicate, binding)
        variable_count = len(abstraction.atoms)
        if variable_count == 0:
            value = abstraction.formula.evaluate({})
            return DetectionResult(value, "ground", 1, "no null comparisons")
        if self.use_dpll:
            statistics = DPLLStatistics()
            verdict = dpll_is_tautology(abstraction.formula, statistics)
            cost = statistics.decisions + statistics.unit_propagations + 1
        else:
            verdict = truth_table_tautology(abstraction.formula)
            cost = 2 ** variable_count
        if verdict:
            return DetectionResult(True, "propositional", cost, f"{variable_count} atoms")
        # A propositional non-tautology is inconclusive: arithmetic or
        # constraints could still force the clause to be true.
        return DetectionResult(None, "propositional", cost, "not a propositional tautology")

    def interval_check(self, predicate: Predicate, binding: Mapping[str, XTuple]) -> DetectionResult:
        """Layer 2: exact region analysis for constant comparisons."""
        analysis = interval_analyse(predicate, binding, integer_attributes=self.integer_attributes)
        if not analysis.supported:
            return DetectionResult(None, "interval", analysis.regions_examined, analysis.reason)
        return DetectionResult(analysis.is_tautology, "interval", analysis.regions_examined, analysis.reason)

    def brute_force_check(
        self,
        predicate: Predicate,
        binding: Mapping[str, XTuple],
        max_substitutions: int = 250_000,
    ) -> DetectionResult:
        """Layer 3: substitute every legal combination of domain values."""
        sites: List[Tuple[str, str, str]] = []  # (variable, attribute, key)
        seen: Dict[str, None] = {}
        for comparison in predicate.comparisons():
            for term in (comparison.left, comparison.right):
                if isinstance(term, AttributeRef) and is_null(term.value(binding)):
                    key = f"{term.variable}.{term.attribute}"
                    if key not in seen:
                        seen[key] = None
                        sites.append((term.variable, term.attribute, key))
        if not sites:
            return DetectionResult(predicate.evaluate(binding).is_true(), "ground", 1, "no null sites")
        choices: List[Sequence[Any]] = []
        for variable, attribute, key in sites:
            if attribute not in self.domains:
                return DetectionResult(
                    None, "brute-force", 0, f"no finite domain declared for {attribute}"
                )
            choices.append(tuple(self.domains[attribute]))
        space = 1
        for values in choices:
            space *= max(1, len(values))
        if space > max_substitutions:
            raise TautologyError(
                f"brute-force substitution space of {space} exceeds the cap of {max_substitutions}"
            )
        examined = 0
        legal_seen = False
        for assignment in iter_product(*choices):
            substituted = self._substitute(binding, sites, assignment)
            if not all(constraint(substituted) for constraint in self.constraints):
                continue
            legal_seen = True
            examined += 1
            if not predicate.evaluate(substituted).is_true():
                return DetectionResult(False, "brute-force", examined, "counterexample substitution")
        if not legal_seen:
            # No legal substitution at all: vacuously a tautology, though it
            # really signals over-constrained data; report it explicitly.
            return DetectionResult(True, "brute-force", examined, "no legal substitutions (vacuous)")
        return DetectionResult(True, "brute-force", examined, "true under every legal substitution")

    @staticmethod
    def _substitute(
        binding: Mapping[str, XTuple],
        sites: Sequence[Tuple[str, str, str]],
        assignment: Sequence[Any],
    ) -> Dict[str, XTuple]:
        per_variable: Dict[str, Dict[str, Any]] = {}
        for (variable, attribute, _), value in zip(sites, assignment):
            per_variable.setdefault(variable, {})[attribute] = value
        substituted: Dict[str, XTuple] = {}
        for variable, row in binding.items():
            replacements = per_variable.get(variable)
            if replacements:
                data = row.as_dict()
                data.update(replacements)
                substituted[variable] = XTuple(data)
            else:
                substituted[variable] = row
        return substituted

    # -- combined pipeline ---------------------------------------------------------------
    def detect(self, predicate: Predicate, binding: Mapping[str, XTuple]) -> DetectionResult:
        """Run the layers in order of cost and return the first decisive verdict.

        The propositional layer can only confirm tautologies; the interval
        layer is exact within its fragment; brute force is exact whenever
        the relevant domains are finite and declared.  When no layer can
        decide, the result has ``is_tautology=None`` and
        ``method="undecided"`` — the practical situation the Appendix
        predicts for constraint-dependent queries without declared
        constraints.
        """
        propositional = self.propositional_check(predicate, binding)
        if propositional.is_tautology is not None:
            return propositional
        interval = self.interval_check(predicate, binding)
        if interval.is_tautology is not None:
            # A positive interval verdict stays valid under constraints
            # (constraints only shrink the set of legal substitutions).  A
            # negative one may be overturned by them — the counterexample
            # region might be illegal — so with constraints declared we fall
            # through to the constraint-aware brute-force layer.
            if interval.is_tautology or not self.constraints:
                return interval
        brute = self.brute_force_check(predicate, binding)
        if brute.is_tautology is not None:
            return brute
        return DetectionResult(
            None, "undecided",
            propositional.cost + interval.cost + brute.cost,
            "; ".join(filter(None, (propositional.details, interval.details, brute.details))),
        )


def evaluate_unknown_lower_bound(
    query: Query,
    detector: Optional[TautologyDetector] = None,
    minimize: bool = True,
) -> XRelation:
    """The correct lower bound under the *unknown* interpretation.

    A binding contributes when its where clause is TRUE outright **or**
    defines a tautology (true under every legal substitution of its
    nulls).  This is the expensive evaluation strategy the paper's
    Appendix argues against; comparing its output and cost with
    :func:`repro.core.query.evaluate_lower_bound` is experiment E4/E11.

    Bindings the detector cannot decide are (conservatively) excluded, and
    counted in the returned relation's name for transparency.
    """
    detector = detector or TautologyDetector()
    out = Relation(query.output_schema(), validate=False)
    undecided = 0
    for binding in query.bindings():
        truth = query.where.evaluate(binding)
        include = truth.is_true()
        if not include and truth.is_ni():
            verdict = detector.detect(query.where, binding)
            if verdict.is_tautology is True:
                include = True
            elif verdict.is_tautology is None:
                undecided += 1
        if include:
            out.add(XTuple(
                (output_name, ref.value(binding)) for output_name, ref in query.target
            ))
    if undecided:
        out.schema.name = f"{query.name} (unknown interpretation, {undecided} undecided)"
    return XRelation(out)
