"""A DPLL satisfiability solver for the tautology analysis (Appendix).

Propositional tautology checking is co-NP-complete (the Appendix cites
Garey & Johnson): a formula is a tautology iff its negation is
unsatisfiable.  This module provides a small, dependency-free DPLL solver
— unit propagation, pure-literal elimination and branching on the most
frequent variable — operating on the CNF clause representation produced by
:func:`repro.tautology.propositional.to_cnf`.

It is deliberately a real solver rather than a truth-table loop so that
benchmark E11 can compare three cost regimes on the same instances:

* truth-table enumeration (2^n always),
* DPLL (fast on easy instances, exponential in the worst case),
* brute-force domain substitution (|D|^k, the paper's "not feasible in
  general" baseline).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .propositional import Clause, Formula, Literal, NotF, to_cnf


class DPLLStatistics:
    """Counters describing one solver run (used by the benchmarks)."""

    def __init__(self) -> None:
        self.decisions = 0
        self.unit_propagations = 0
        self.pure_literal_eliminations = 0

    def __repr__(self) -> str:
        return (
            f"DPLLStatistics(decisions={self.decisions}, "
            f"unit={self.unit_propagations}, pure={self.pure_literal_eliminations})"
        )


def _simplify(clauses: List[Set[Literal]], literal: Literal) -> Optional[List[Set[Literal]]]:
    """Assign a literal: drop satisfied clauses, shrink the others.

    Returns ``None`` when an empty clause (conflict) arises.
    """
    name, polarity = literal
    negation = (name, not polarity)
    result: List[Set[Literal]] = []
    for clause in clauses:
        if literal in clause:
            continue
        if negation in clause:
            reduced = clause - {negation}
            if not reduced:
                return None
            result.append(set(reduced))
        else:
            result.append(set(clause))
    return result


def dpll_satisfiable(
    clauses: Iterable[Clause],
    statistics: Optional[DPLLStatistics] = None,
) -> Optional[Dict[str, bool]]:
    """Decide satisfiability of a CNF clause set.

    Returns a satisfying assignment (possibly partial — unmentioned
    variables are unconstrained) or ``None`` when unsatisfiable.
    """
    stats = statistics if statistics is not None else DPLLStatistics()
    working: List[Set[Literal]] = [set(c) for c in clauses]
    assignment: Dict[str, bool] = {}

    def solve(current: List[Set[Literal]], model: Dict[str, bool]) -> Optional[Dict[str, bool]]:
        # Unit propagation.
        changed = True
        while changed:
            changed = False
            unit = next((c for c in current if len(c) == 1), None)
            if unit is not None:
                literal = next(iter(unit))
                stats.unit_propagations += 1
                simplified = _simplify(current, literal)
                if simplified is None:
                    return None
                model = dict(model)
                model[literal[0]] = literal[1]
                current = simplified
                changed = True
        if not current:
            return model
        # Pure literal elimination.
        polarity_seen: Dict[str, Set[bool]] = {}
        for clause in current:
            for name, polarity in clause:
                polarity_seen.setdefault(name, set()).add(polarity)
        pure = next((name for name, seen in polarity_seen.items() if len(seen) == 1), None)
        if pure is not None:
            polarity = next(iter(polarity_seen[pure]))
            stats.pure_literal_eliminations += 1
            simplified = _simplify(current, (pure, polarity))
            if simplified is None:
                return None
            model = dict(model)
            model[pure] = polarity
            return solve(simplified, model)
        # Branch on the most frequent variable.
        counts = Counter(name for clause in current for name, _ in clause)
        variable = counts.most_common(1)[0][0]
        stats.decisions += 1
        for polarity in (True, False):
            simplified = _simplify(current, (variable, polarity))
            if simplified is None:
                continue
            attempt = dict(model)
            attempt[variable] = polarity
            result = solve(simplified, attempt)
            if result is not None:
                return result
        return None

    return solve(working, assignment)


def is_tautology(formula: Formula, statistics: Optional[DPLLStatistics] = None) -> bool:
    """A formula is a tautology iff its negation is unsatisfiable."""
    clauses = to_cnf(NotF(formula))
    return dpll_satisfiable(clauses, statistics) is None


def is_satisfiable(formula: Formula, statistics: Optional[DPLLStatistics] = None) -> bool:
    """Plain satisfiability of a formula."""
    clauses = to_cnf(formula)
    return dpll_satisfiable(clauses, statistics) is not None
