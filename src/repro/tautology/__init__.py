"""The Appendix machinery: tautology detection under the "unknown" interpretation.

Three analysis layers of increasing cost — propositional abstraction with
DPLL, interval/region analysis of inequalities, and brute-force domain
substitution restricted by integrity constraints — plus the
"unknown"-interpretation query evaluator built on top of them.  The `ni`
interpretation of the core library never needs any of this, which is the
practicability argument the reproduction's experiment E11 quantifies.
"""

from .propositional import (
    Abstraction,
    AndF,
    BOTTOM,
    Const,
    Formula,
    NotF,
    OrF,
    TOP,
    Var,
    abstract_predicate,
    to_cnf,
    to_nnf,
    truth_table_tautology,
)
from .dpll import DPLLStatistics, dpll_satisfiable, is_satisfiable, is_tautology
from .intervals import IntervalAnalysis, analyse
from .detector import DetectionResult, TautologyDetector, evaluate_unknown_lower_bound

__all__ = [
    "Abstraction", "AndF", "BOTTOM", "Const", "Formula", "NotF", "OrF", "TOP", "Var",
    "abstract_predicate", "to_cnf", "to_nnf", "truth_table_tautology",
    "DPLLStatistics", "dpll_satisfiable", "is_satisfiable", "is_tautology",
    "IntervalAnalysis", "analyse",
    "DetectionResult", "TautologyDetector", "evaluate_unknown_lower_bound",
]
