"""Synthetic relation generators with controllable null density.

The paper's practicability arguments are about *shape*: MAYBE answers grow
with null density, possible-worlds evaluation grows exponentially in the
number of nulls, set operations cost |R1|·|R2| naively.  The generators
here produce the synthetic relations the benchmarks sweep to chart those
shapes.  Everything is seeded and deterministic.

Generators return plain :class:`~repro.core.relation.Relation` objects;
the workload builders in :mod:`repro.datagen.workloads` assemble them into
the specific experiment setups (employee databases, parts–suppliers
databases, containment pairs, ...).
"""

from __future__ import annotations

import random
import string
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.domains import Domain, EnumeratedDomain, IntegerRangeDomain
from ..core.nulls import NI
from ..core.relation import Relation, RelationSchema
from ..core.tuples import XTuple


class RelationGenerator:
    """Generates relations over a fixed schema with per-attribute value pools.

    Parameters
    ----------
    attributes:
        Attribute names of the generated relations.
    domains:
        Mapping from attribute name to either a :class:`Domain` (sampled
        via its ``sample`` method) or an explicit sequence of values.
    null_rates:
        Mapping from attribute name to the probability that a generated
        cell is ``ni``; attributes not listed use *default_null_rate*.
    seed:
        Seed for the internal :class:`random.Random`.
    """

    def __init__(
        self,
        attributes: Sequence[str],
        domains: Mapping[str, Any],
        null_rates: Optional[Mapping[str, float]] = None,
        default_null_rate: float = 0.0,
        seed: int = 0,
    ):
        self.attributes = tuple(attributes)
        self.domains = dict(domains)
        self.null_rates = dict(null_rates or {})
        self.default_null_rate = default_null_rate
        self.rng = random.Random(seed)
        for attribute in self.attributes:
            if attribute not in self.domains:
                raise KeyError(f"no value pool declared for attribute {attribute!r}")

    # -- value sampling -------------------------------------------------------
    def _sample_value(self, attribute: str) -> Any:
        pool = self.domains[attribute]
        if isinstance(pool, Domain):
            return pool.sample(1, self.rng)[0]
        return pool[self.rng.randrange(len(pool))]

    def _null_rate(self, attribute: str) -> float:
        return self.null_rates.get(attribute, self.default_null_rate)

    def row(self) -> XTuple:
        """Generate one row."""
        data: Dict[str, Any] = {}
        for attribute in self.attributes:
            if self.rng.random() < self._null_rate(attribute):
                data[attribute] = NI
            else:
                data[attribute] = self._sample_value(attribute)
        return XTuple(data)

    def relation(self, rows: int, name: str = "R") -> Relation:
        """Generate a relation with *rows* generated rows (duplicates collapse)."""
        relation = Relation(RelationSchema(self.attributes, name=name), validate=False)
        relation._rows = {self.row() for _ in range(rows)}
        return relation


def employee_relation(
    size: int,
    null_rate: float = 0.3,
    seed: int = 0,
    name: str = "EMP",
    with_managers: bool = True,
) -> Relation:
    """An EMP(E#, NAME, SEX, MGR#, TEL#) relation like the paper's Table II.

    ``E#`` is never null (it is the key); ``TEL#`` and ``MGR#`` are null
    with probability *null_rate*; when *with_managers* is true manager
    numbers are drawn from the generated employee numbers so self-join
    queries (Figure 2) have matches.
    """
    rng = random.Random(seed)
    employee_numbers = rng.sample(range(1000, 9999), size)
    names = [f"EMP{num}" for num in employee_numbers]
    rows: List[Tuple] = []
    for i, number in enumerate(employee_numbers):
        sex = "F" if rng.random() < 0.5 else "M"
        if rng.random() < null_rate:
            manager = NI
        elif with_managers and i > 0:
            manager = employee_numbers[rng.randrange(i)]
        else:
            manager = employee_numbers[0]
        telephone = NI if rng.random() < null_rate else rng.randint(2_000_000, 2_999_999)
        rows.append((number, names[i], sex, manager, telephone))
    return Relation.from_rows(["E#", "NAME", "SEX", "MGR#", "TEL#"], rows, name=name)


def parts_suppliers_relation(
    suppliers: int,
    parts: int,
    rows: int,
    null_rate: float = 0.2,
    seed: int = 0,
    name: str = "PS",
) -> Relation:
    """A PS(S#, P#) relation like display (6.6), with null part numbers."""
    rng = random.Random(seed)
    supplier_ids = [f"s{i}" for i in range(1, suppliers + 1)]
    part_ids = [f"p{i}" for i in range(1, parts + 1)]
    generated: List[Tuple] = []
    for _ in range(rows):
        supplier = supplier_ids[rng.randrange(len(supplier_ids))]
        part = NI if rng.random() < null_rate else part_ids[rng.randrange(len(part_ids))]
        generated.append((supplier, part))
    return Relation.from_rows(["S#", "P#"], generated, name=name)


def random_partial_relation(
    attributes: Sequence[str],
    domain_size: int,
    rows: int,
    null_rate: float,
    seed: int = 0,
    name: str = "R",
) -> Relation:
    """A generic relation over small string domains, for set-operation sweeps."""
    values = {a: [f"{a.lower()}{i}" for i in range(domain_size)] for a in attributes}
    generator = RelationGenerator(
        attributes, values, default_null_rate=null_rate, seed=seed
    )
    return generator.relation(rows, name=name)


def containment_pair(
    base_rows: int,
    extra_rows: int,
    attributes: Sequence[str] = ("A", "B"),
    domain_size: int = 8,
    null_rate: float = 0.25,
    seed: int = 0,
) -> Tuple[Relation, Relation]:
    """A pair (smaller, larger) where the larger extends the smaller with new rows.

    Mirrors the PS'/PS'' construction of Section 1: the larger relation is
    obtained from the smaller by adding tuples, so under the x-relation
    reading the larger always contains the smaller, while Codd's
    substitution principle typically reports MAYBE.
    """
    smaller = random_partial_relation(attributes, domain_size, base_rows, null_rate, seed=seed, name="R_small")
    generator = RelationGenerator(
        tuple(attributes),
        {a: [f"{a.lower()}{i}" for i in range(domain_size)] for a in attributes},
        default_null_rate=null_rate,
        seed=seed + 1,
    )
    larger = Relation(RelationSchema(tuple(attributes), name="R_large"), validate=False)
    larger._rows = set(smaller.tuples()) | {generator.row() for _ in range(extra_rows)}
    return smaller, larger
