"""Synthetic data and workload generation for the benchmarks and examples."""

from .generators import (
    RelationGenerator,
    containment_pair,
    employee_relation,
    parts_suppliers_relation,
    random_partial_relation,
)
from .workloads import (
    FIGURE_1_QUERY,
    FIGURE_2_QUERY,
    employee_database,
    null_rate_sweep,
    parts_suppliers,
    parts_suppliers_database,
    ps_double_prime,
    ps_prime,
    scaled_employee_database,
    scaled_parts_suppliers_database,
    table_one,
    table_two,
)

__all__ = [
    "RelationGenerator", "containment_pair", "employee_relation",
    "parts_suppliers_relation", "random_partial_relation",
    "FIGURE_1_QUERY", "FIGURE_2_QUERY", "employee_database", "null_rate_sweep",
    "parts_suppliers", "parts_suppliers_database", "ps_double_prime", "ps_prime",
    "scaled_employee_database", "scaled_parts_suppliers_database", "table_one", "table_two",
]
