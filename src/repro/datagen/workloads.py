"""Workload builders: the concrete databases the examples and benchmarks use.

Two kinds of fixtures live here:

* **paper fixtures** — the exact relations the paper draws (Table I,
  Table II, the PS'/PS'' pair of Section 1, the PARTS–SUPPLIERS relation
  of display (6.6)), so experiments can compare against the printed rows;
* **scaled workloads** — parameterised families (employee databases with a
  chosen null density, parts–suppliers databases of a chosen size) used by
  the cost-shape benchmarks (E10–E12).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..core.domains import EnumeratedDomain, IntegerRangeDomain
from ..core.nulls import NI
from ..core.relation import Relation
from ..storage.database import Database
from ..constraints.keys import KeyConstraint
from .generators import employee_relation, parts_suppliers_relation


# ---------------------------------------------------------------------------
# Paper fixtures
# ---------------------------------------------------------------------------

def table_one() -> Relation:
    """Table I: EMP(E#, NAME, SEX, MGR#) before the schema change."""
    return Relation.from_rows(
        ["E#", "NAME", "SEX", "MGR#"],
        [
            (1120, "SMITH", "M", 2235),
            (4335, "BROWN", "F", 2235),
            (8799, "GREEN", "M", 1255),
        ],
        name="EMP",
    )


def table_two() -> Relation:
    """Table II: EMP(E#, NAME, SEX, MGR#, TEL#) after adding TEL# (all null)."""
    return Relation.from_rows(
        ["E#", "NAME", "SEX", "MGR#", "TEL#"],
        [
            (1120, "SMITH", "M", 2235, NI),
            (4335, "BROWN", "F", 2235, NI),
            (8799, "GREEN", "M", 1255, NI),
        ],
        name="EMP",
    )


def ps_prime() -> Relation:
    """PS' of display (1.1): {(ω, s1), (p1, s2)}."""
    return Relation.from_rows(
        ["P#", "S#"],
        [(NI, "s1"), ("p1", "s2")],
        name="PS'",
    )


def ps_double_prime() -> Relation:
    """PS'' of display (1.2): PS' plus the tuple (p2, s2)."""
    return Relation.from_rows(
        ["P#", "S#"],
        [(NI, "s1"), ("p1", "s2"), ("p2", "s2")],
        name="PS''",
    )


def parts_suppliers() -> Relation:
    """The PARTS–SUPPLIERS relation of display (6.6)."""
    return Relation.from_rows(
        ["S#", "P#"],
        [
            ("s1", "p1"),
            ("s1", "p2"),
            ("s1", NI),
            ("s2", "p1"),
            ("s2", NI),
            ("s3", NI),
            ("s4", "p4"),
        ],
        name="PS",
    )


def employee_database(include_managers: bool = True) -> Database:
    """A Database holding the paper's EMP relation (Table II shape).

    With *include_managers* the managers referenced by MGR# (2235, 1255)
    are added as employees of their own, so the Figure 2 self-join query
    has qualifying rows.
    """
    database = Database("paper")
    table = database.create_table(
        "EMP",
        ["E#", "NAME", "SEX", "MGR#", "TEL#"],
        constraints=[KeyConstraint(["E#"])],
    )
    rows: List[Tuple] = [
        (1120, "SMITH", "M", 2235, NI),
        (4335, "BROWN", "F", 2235, NI),
        (8799, "GREEN", "M", 1255, NI),
    ]
    if include_managers:
        # JONES manages SMITH and BROWN and is managed by ADAMS; ADAMS manages
        # GREEN and JONES and is managed by JONES.  The cycle makes Figure 2
        # interesting: GREEN qualifies (male manager, no self/mutual
        # management with him), JONES does not (she manages her own manager).
        rows.extend([
            (2235, "JONES", "F", 1255, 2634952),
            (1255, "ADAMS", "M", 2235, 2639001),
        ])
    table.insert_many(rows)
    return database


def parts_suppliers_database() -> Database:
    """A Database holding the display (6.6) PARTS–SUPPLIERS relation."""
    database = Database("parts-suppliers")
    table = database.create_table("PS", ["S#", "P#"])
    table.load(parts_suppliers().tuples())
    return database


# ---------------------------------------------------------------------------
# Scaled workloads for the cost-shape benchmarks
# ---------------------------------------------------------------------------

def scaled_employee_database(size: int, null_rate: float, seed: int = 0) -> Database:
    """A Database with a synthetic EMP relation of the given size and null density."""
    database = Database(f"emp-{size}-{null_rate}")
    relation = employee_relation(size, null_rate=null_rate, seed=seed)
    table = database.create_table("EMP", relation.schema.attributes)
    table.load(relation.tuples())
    return database


def scaled_parts_suppliers_database(
    suppliers: int, parts: int, rows: int, null_rate: float, seed: int = 0
) -> Database:
    """A Database with a synthetic PS relation of the given shape."""
    database = Database(f"ps-{suppliers}x{parts}")
    relation = parts_suppliers_relation(suppliers, parts, rows, null_rate=null_rate, seed=seed)
    table = database.create_table("PS", relation.schema.attributes)
    table.load(relation.tuples())
    return database


def null_rate_sweep(rates: Sequence[float] = (0.0, 0.1, 0.2, 0.4, 0.6), size: int = 60, seed: int = 0) -> Dict[float, Database]:
    """A family of employee databases differing only in null density."""
    return {rate: scaled_employee_database(size, rate, seed=seed) for rate in rates}


#: The query of Figure 1, verbatim (modulo ASCII connectives).
FIGURE_1_QUERY = """
range of e is EMP
retrieve (e.NAME, e.E#)
where (e.SEX = "F" and e.TEL# > 2634000)
   or (e.TEL# < 2634000)
"""

#: The query of Figure 2, verbatim.
FIGURE_2_QUERY = """
range of e is EMP
range of m is EMP
retrieve (e.NAME)
where m.SEX = "M"
  and e.MGR# = m.E#
  and e.MGR# != e.E#
  and e.E# != m.MGR#
"""
