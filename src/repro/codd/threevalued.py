"""Codd's three-valued logic with MAYBE (Codd 1979), used as a baseline.

Codd's logic has the same truth tables as Table III (Kleene's strong
tables) but a different *interpretation* of the third value: MAYBE means
"the comparison might hold, because the null stands for some existing but
unknown value".  That reading is what creates the tautology problem the
paper's Appendix analyses (a disjunction like ``TEL# > k ∨ TEL# < k``
*should* be certainly true under the unknown interpretation, yet the
truth-table evaluation returns MAYBE) and what motivates the MAYBE
versions of the relational operators.

The truth values here are distinct objects from the core
:class:`~repro.core.threevalued.TruthValue` so the two systems cannot be
mixed up accidentally; conversion helpers are provided for the comparison
experiments.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

from ..core.errors import AlgebraError
from ..core.nulls import is_null
from ..core.threevalued import comparison_function
from ..core import threevalued as core_tvl


class CoddTruth:
    """One of Codd's three truth values: TRUE, MAYBE, FALSE."""

    __slots__ = ("_name",)
    _instances: Dict[str, "CoddTruth"] = {}

    def __new__(cls, name: str):
        if name in cls._instances:
            return cls._instances[name]
        instance = super().__new__(cls)
        instance._name = name
        cls._instances[name] = instance
        return instance

    @property
    def name(self) -> str:
        return self._name

    def is_true(self) -> bool:
        return self._name == "TRUE"

    def is_false(self) -> bool:
        return self._name == "FALSE"

    def is_maybe(self) -> bool:
        return self._name == "MAYBE"

    def and_(self, other: "CoddTruth") -> "CoddTruth":
        if self.is_false() or other.is_false():
            return CODD_FALSE
        if self.is_true() and other.is_true():
            return CODD_TRUE
        return MAYBE

    def or_(self, other: "CoddTruth") -> "CoddTruth":
        if self.is_true() or other.is_true():
            return CODD_TRUE
        if self.is_false() and other.is_false():
            return CODD_FALSE
        return MAYBE

    def not_(self) -> "CoddTruth":
        if self.is_true():
            return CODD_FALSE
        if self.is_false():
            return CODD_TRUE
        return MAYBE

    def __and__(self, other: "CoddTruth") -> "CoddTruth":
        return self.and_(other)

    def __or__(self, other: "CoddTruth") -> "CoddTruth":
        return self.or_(other)

    def __invert__(self) -> "CoddTruth":
        return self.not_()

    def __bool__(self) -> bool:
        return self.is_true()

    def __repr__(self) -> str:
        return self._name

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, CoddTruth):
            return self._name == other._name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("CoddTruth", self._name))


CODD_TRUE = CoddTruth("TRUE")
CODD_FALSE = CoddTruth("FALSE")
MAYBE = CoddTruth("MAYBE")

CODD_TRUTH_VALUES = (CODD_TRUE, MAYBE, CODD_FALSE)


def codd_compare(left: Any, op: str, right: Any) -> CoddTruth:
    """Evaluate ``left θ right`` under Codd's unknown interpretation.

    Any null operand makes the result MAYBE (the value exists, so the
    comparison might hold); otherwise TRUE/FALSE as usual.
    """
    if is_null(left) or is_null(right):
        return MAYBE
    func = comparison_function(op)
    try:
        return CODD_TRUE if func(left, right) else CODD_FALSE
    except TypeError:
        import operator as _op
        if func in (_op.eq, _op.ne):
            return CODD_TRUE if func is _op.ne else CODD_FALSE
        raise AlgebraError(
            f"cannot compare {left!r} and {right!r} with {op!r}: incompatible types"
        ) from None


def to_core_truth(value: CoddTruth) -> core_tvl.TruthValue:
    """Map Codd's truth values onto the core ones (MAYBE ↦ ni).

    The truth *tables* coincide; only the interpretation differs, which is
    exactly the point experiment E3 makes by printing both side by side.
    """
    if value.is_true():
        return core_tvl.TRUE
    if value.is_false():
        return core_tvl.FALSE
    return core_tvl.NI_TRUTH


def from_core_truth(value: core_tvl.TruthValue) -> CoddTruth:
    """Map core truth values onto Codd's (ni ↦ MAYBE)."""
    if value.is_true():
        return CODD_TRUE
    if value.is_false():
        return CODD_FALSE
    return MAYBE


def conjunction(values: Iterable[CoddTruth]) -> CoddTruth:
    result = CODD_TRUE
    for v in values:
        result = result & v
        if result.is_false():
            return CODD_FALSE
    return result


def disjunction(values: Iterable[CoddTruth]) -> CoddTruth:
    result = CODD_FALSE
    for v in values:
        result = result | v
        if result.is_true():
            return CODD_TRUE
    return result
