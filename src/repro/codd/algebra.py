"""Codd's extended relational algebra: TRUE and MAYBE operator versions.

Codd (1979) extends selection, join and division to relations with
"unknown" nulls by providing two versions of each operator:

* the **TRUE version** keeps the tuples whose qualification evaluates to
  TRUE under the three-valued logic;
* the **MAYBE version** keeps the tuples whose qualification evaluates to
  MAYBE — i.e. tuples that *might* satisfy it once the unknown values
  become known.

The paper observes (Section 1) that real systems only implement the TRUE
version because MAYBE answers are large and rarely useful; our experiment
E10 measures exactly that selectivity collapse.  This module also provides
the classical (null-free) operators ``codd_union`` / ``codd_difference`` /
``codd_product`` / ``codd_project`` / ``codd_select`` with their classical
union-compatibility preconditions, which the Section 7 correspondence
experiment (E9) runs against the generalised operators.

All functions here operate on plain :class:`~repro.core.relation.Relation`
objects (representations), never on x-relations: the whole point of the
baseline is that it manipulates tables, not equivalence classes.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from ..core.errors import AlgebraError, AttributeNotFound, UnionCompatibilityError
from ..core.nulls import is_null
from ..core.relation import Relation, RelationSchema
from ..core.tuples import XTuple
from .threevalued import CODD_TRUE, MAYBE, CoddTruth, codd_compare


# ---------------------------------------------------------------------------
# TRUE / MAYBE selection
# ---------------------------------------------------------------------------

def _select(relation: Relation, predicate: Callable[[XTuple], CoddTruth], wanted: CoddTruth, name: str) -> Relation:
    out = Relation(
        RelationSchema(relation.schema.attributes, relation.schema.domains(), name=name),
        validate=False,
    )
    out._rows = {r for r in relation.tuples() if predicate(r) == wanted}
    return out


def select_true(relation: Relation, attribute: str, op: str, constant: Any) -> Relation:
    """TRUE-version selection ``R[A θ k]``: keep tuples evaluating to TRUE."""
    if attribute not in relation.schema:
        raise AttributeNotFound(attribute, relation.schema.attributes)
    return _select(
        relation,
        lambda r: codd_compare(r[attribute], op, constant),
        CODD_TRUE,
        name=f"{relation.name}[{attribute}{op}{constant!r}]T",
    )


def select_maybe(relation: Relation, attribute: str, op: str, constant: Any) -> Relation:
    """MAYBE-version selection: keep tuples evaluating to MAYBE."""
    if attribute not in relation.schema:
        raise AttributeNotFound(attribute, relation.schema.attributes)
    return _select(
        relation,
        lambda r: codd_compare(r[attribute], op, constant),
        MAYBE,
        name=f"{relation.name}[{attribute}{op}{constant!r}]M",
    )


def select_attrs_true(relation: Relation, left: str, op: str, right: str) -> Relation:
    """TRUE-version selection ``R[A θ B]``."""
    relation.schema.require((left, right))
    return _select(
        relation,
        lambda r: codd_compare(r[left], op, r[right]),
        CODD_TRUE,
        name=f"{relation.name}[{left}{op}{right}]T",
    )


def select_attrs_maybe(relation: Relation, left: str, op: str, right: str) -> Relation:
    """MAYBE-version selection ``R[A θ B]``."""
    relation.schema.require((left, right))
    return _select(
        relation,
        lambda r: codd_compare(r[left], op, r[right]),
        MAYBE,
        name=f"{relation.name}[{left}{op}{right}]M",
    )


def select_predicate_true(relation: Relation, predicate: Callable[[XTuple], CoddTruth]) -> Relation:
    """TRUE-version selection with an arbitrary Codd-truth predicate."""
    return _select(relation, predicate, CODD_TRUE, name=f"{relation.name}[σ]T")


def select_predicate_maybe(relation: Relation, predicate: Callable[[XTuple], CoddTruth]) -> Relation:
    """MAYBE-version selection with an arbitrary Codd-truth predicate."""
    return _select(relation, predicate, MAYBE, name=f"{relation.name}[σ]M")


# ---------------------------------------------------------------------------
# TRUE / MAYBE join
# ---------------------------------------------------------------------------

def _product_rows(r1: Relation, r2: Relation) -> List[XTuple]:
    overlap = [a for a in r1.schema.attributes if a in r2.schema]
    if overlap:
        raise AlgebraError(
            f"Codd product requires disjoint attribute sets; both declare {overlap}"
        )
    rows: List[XTuple] = []
    for a in r1.tuples():
        for b in r2.tuples():
            rows.append(a.join(b))
    return rows


def codd_product(r1: Relation, r2: Relation) -> Relation:
    """Cartesian product of two relations (attribute sets must be disjoint)."""
    schema = r1.schema.union(r2.schema, name=f"({r1.name} × {r2.name})")
    out = Relation(schema, validate=False)
    out._rows = set(_product_rows(r1, r2))
    return out


def join_true(r1: Relation, r2: Relation, left: str, op: str, right: str) -> Relation:
    """TRUE-version θ-join: product followed by TRUE selection."""
    return select_attrs_true(codd_product(r1, r2), left, op, right)


def join_maybe(r1: Relation, r2: Relation, left: str, op: str, right: str) -> Relation:
    """MAYBE-version θ-join: product followed by MAYBE selection."""
    return select_attrs_maybe(codd_product(r1, r2), left, op, right)


def outer_join(r1: Relation, r2: Relation, left: str, right: str) -> Relation:
    """Codd's outer equi-join: the TRUE equi-join plus dangling rows padded with nulls.

    This is the classical outer join on ``left = right``; the paper's
    union-join (Section 5) is the ni-interpretation analogue.
    """
    inner = join_true(r1, r2, left, "=", right)
    schema = RelationSchema(
        inner.schema.attributes, inner.schema.domains(),
        name=f"({r1.name} ⟗ {r2.name})",
    )
    matched_left = {row.project(r1.schema.attributes) for row in inner.tuples()}
    matched_right = {row.project(r2.schema.attributes) for row in inner.tuples()}
    out = Relation(schema, validate=False)
    rows = set(inner.tuples())
    rows.update(r for r in r1.tuples() if r not in matched_left)
    rows.update(r for r in r2.tuples() if r not in matched_right)
    out._rows = rows
    return out


# ---------------------------------------------------------------------------
# Classical operators with classical preconditions (for the E9 correspondence)
# ---------------------------------------------------------------------------

def _require_union_compatible(r1: Relation, r2: Relation, operation: str) -> None:
    if not r1.schema.same_attributes(r2.schema):
        raise UnionCompatibilityError(
            f"{operation} requires union-compatible operands; "
            f"{r1.name} has {list(r1.schema.attributes)} and {r2.name} has {list(r2.schema.attributes)}"
        )


def codd_union(r1: Relation, r2: Relation) -> Relation:
    """Classical set union of union-compatible relations."""
    _require_union_compatible(r1, r2, "union")
    out = Relation(
        RelationSchema(r1.schema.attributes, r1.schema.domains(), name=f"({r1.name} ∪ {r2.name})"),
        validate=False,
    )
    out._rows = set(r1.tuples()) | set(r2.tuples())
    return out


def codd_difference(r1: Relation, r2: Relation) -> Relation:
    """Classical set difference of union-compatible relations."""
    _require_union_compatible(r1, r2, "difference")
    out = Relation(
        RelationSchema(r1.schema.attributes, r1.schema.domains(), name=f"({r1.name} − {r2.name})"),
        validate=False,
    )
    out._rows = set(r1.tuples()) - set(r2.tuples())
    return out


def codd_intersection(r1: Relation, r2: Relation) -> Relation:
    """Classical set intersection (derivable, provided for convenience)."""
    _require_union_compatible(r1, r2, "intersection")
    out = Relation(
        RelationSchema(r1.schema.attributes, r1.schema.domains(), name=f"({r1.name} ∩ {r2.name})"),
        validate=False,
    )
    out._rows = set(r1.tuples()) & set(r2.tuples())
    return out


def codd_project(relation: Relation, attributes: Sequence[str]) -> Relation:
    """Classical projection (duplicate elimination included)."""
    relation.schema.require(attributes)
    out = Relation(
        relation.schema.project(tuple(attributes), name=f"{relation.name}[{', '.join(attributes)}]"),
        validate=False,
    )
    out._rows = {r.project(attributes) for r in relation.tuples()}
    return out


def codd_select(relation: Relation, attribute: str, op: str, constant: Any) -> Relation:
    """Classical selection on a total relation (no third truth value arises)."""
    if relation.is_total():
        return select_true(relation, attribute, op, constant)
    raise AlgebraError("codd_select is defined for total relations; use select_true/select_maybe")
