"""Set containment and equality under Codd's null substitution principle.

Section 1 of the paper shows that evaluating ``PS'' ⊇ PS'`` with Codd's
null substitution principle yields MAYBE even though ``PS''`` was obtained
from ``PS'`` by *adding* a tuple, and that ``PS' = PS'`` itself evaluates
to MAYBE — the three-valued reading destroys the most basic set-algebraic
expectations.  This module implements the substitution principle so the
example can be executed rather than asserted:

* every null occurrence is replaced, independently, by a value from the
  attribute's substitution domain;
* an expression that is true under every substitution is TRUE, false under
  every substitution is FALSE, and MAYBE otherwise.

The substitution domains default to the *active domain* of the attribute
across both operands plus one fresh value per null occurrence, which is
enough to realise every equality pattern the substitution principle can
distinguish (two nulls equal / different / equal to an existing value).
The number of substitutions is ``∏ |D_i|`` over the null occurrences, so
this is exponential — which is rather the point (experiment E1 and E10
chart the blow-up).
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.domains import Domain
from ..core.nulls import is_ni
from ..core.relation import Relation
from ..core.tuples import XTuple
from .threevalued import CODD_FALSE, CODD_TRUE, MAYBE, CoddTruth


#: A null occurrence: (relation index, tuple, attribute).
NullSite = Tuple[int, XTuple, str]


def null_sites(relations: Sequence[Relation]) -> List[NullSite]:
    """Locate every null occurrence across the given relations."""
    sites: List[NullSite] = []
    for index, relation in enumerate(relations):
        for row in relation.sorted_rows():
            for attribute in relation.schema.attributes:
                if is_ni(row[attribute]):
                    sites.append((index, row, attribute))
    return sites


def _default_substitution_values(
    relations: Sequence[Relation],
    sites: Sequence[NullSite],
    domains: Optional[Mapping[str, Sequence[Any]]],
) -> List[List[Any]]:
    """Choose the candidate values for each null occurrence."""
    choices: List[List[Any]] = []
    fresh_counter = 0
    for index, row, attribute in sites:
        if domains is not None and attribute in domains:
            choices.append(list(domains[attribute]))
            continue
        active: List[Any] = []
        for relation in relations:
            if attribute in relation.schema:
                for r in relation.tuples():
                    value = r[attribute]
                    if not is_ni(value) and value not in active:
                        active.append(value)
        fresh_counter += 1
        active.append(f"⊥fresh{fresh_counter}")
        choices.append(active)
    return choices


def substituted_relations(
    relations: Sequence[Relation],
    sites: Sequence[NullSite],
    assignment: Sequence[Any],
) -> List[Relation]:
    """Apply one substitution assignment, returning total copies of the inputs."""
    per_row: Dict[Tuple[int, XTuple], Dict[str, Any]] = {}
    for (index, row, attribute), value in zip(sites, assignment):
        per_row.setdefault((index, row), {})[attribute] = value
    result: List[Relation] = []
    for index, relation in enumerate(relations):
        out = Relation(relation.schema, validate=False)
        new_rows = set()
        for row in relation.tuples():
            replacements = per_row.get((index, row))
            if replacements:
                data = row.as_dict()
                data.update(replacements)
                new_rows.add(XTuple(data))
            else:
                new_rows.add(row)
        out._rows = new_rows
        result.append(out)
    return result


def substitution_truth(
    relations: Sequence[Relation],
    expression: Callable[[Sequence[Relation]], bool],
    domains: Optional[Mapping[str, Sequence[Any]]] = None,
    max_substitutions: int = 200_000,
) -> CoddTruth:
    """Evaluate a boolean expression over relations by the substitution principle.

    *expression* receives total (null-free) versions of the relations and
    must return a Python bool.  The result is TRUE / FALSE when the
    expression is constant across substitutions and MAYBE otherwise.
    Raises :class:`ValueError` when the substitution space exceeds
    *max_substitutions*, which is how the benchmarks surface the blow-up.
    """
    sites = null_sites(relations)
    if not sites:
        return CODD_TRUE if expression(list(relations)) else CODD_FALSE
    choices = _default_substitution_values(relations, sites, domains)
    space = 1
    for values in choices:
        space *= max(1, len(values))
    if space > max_substitutions:
        raise ValueError(
            f"substitution space has {space} assignments, above the cap of {max_substitutions}"
        )
    saw_true = False
    saw_false = False
    for assignment in iter_product(*choices):
        outcome = expression(substituted_relations(relations, sites, assignment))
        if outcome:
            saw_true = True
        else:
            saw_false = True
        if saw_true and saw_false:
            return MAYBE
    if saw_true:
        return CODD_TRUE
    return CODD_FALSE


# ---------------------------------------------------------------------------
# The specific judgements the paper's Section 1 example uses
# ---------------------------------------------------------------------------

def _classical_contains(container: Relation, contained: Relation) -> bool:
    container_rows = set(container.tuples())
    return all(row in container_rows for row in contained.tuples())


def containment_truth(
    container: Relation,
    contained: Relation,
    domains: Optional[Mapping[str, Sequence[Any]]] = None,
) -> CoddTruth:
    """``container ⊇ contained`` under the null substitution principle."""
    return substitution_truth(
        [container, contained],
        lambda totals: _classical_contains(totals[0], totals[1]),
        domains=domains,
    )


def equality_truth(
    left: Relation,
    right: Relation,
    domains: Optional[Mapping[str, Sequence[Any]]] = None,
) -> CoddTruth:
    """``left = right`` (as sets) under the null substitution principle."""
    return substitution_truth(
        [left, right],
        lambda totals: set(totals[0].tuples()) == set(totals[1].tuples()),
        domains=domains,
    )


def union_contains_truth(
    r1: Relation,
    r2: Relation,
    target: Relation,
    domains: Optional[Mapping[str, Sequence[Any]]] = None,
) -> CoddTruth:
    """``(r1 ∪ r2) ⊇ target`` under the substitution principle.

    The paper notes that even ``PS' ∪ PS'' ⊇ PS'`` fails to evaluate to
    TRUE under Codd's treatment.
    """
    def expr(totals: Sequence[Relation]) -> bool:
        union_rows = set(totals[0].tuples()) | set(totals[1].tuples())
        return all(row in union_rows for row in totals[2].tuples())

    return substitution_truth([r1, r2, target], expr, domains=domains)


def intersection_contained_truth(
    r1: Relation,
    r2: Relation,
    target: Relation,
    domains: Optional[Mapping[str, Sequence[Any]]] = None,
) -> CoddTruth:
    """``(r1 ∩ r2) ⊆ target`` under the substitution principle."""
    def expr(totals: Sequence[Relation]) -> bool:
        inter_rows = set(totals[0].tuples()) & set(totals[1].tuples())
        target_rows = set(totals[2].tuples())
        return inter_rows <= target_rows

    return substitution_truth([r1, r2, target], expr, domains=domains)
