"""The Codd (1979) baseline: "unknown" nulls, MAYBE logic, TRUE/MAYBE operators.

This package implements the approach the paper argues against, so the
comparisons of Sections 1, 5 and 6 can be executed:

* :mod:`repro.codd.threevalued` — TRUE/MAYBE/FALSE truth values and the
  comparison semantics of the "unknown" interpretation;
* :mod:`repro.codd.algebra` — TRUE and MAYBE versions of selection and
  join, Codd's outer join, and the classical operators with their
  classical union-compatibility preconditions;
* :mod:`repro.codd.containment` — set containment/equality via the null
  substitution principle (the PS'/PS'' example of Section 1);
* :mod:`repro.codd.division` — TRUE and MAYBE division (the Section 6
  comparison).
"""

from .threevalued import (
    CODD_FALSE,
    CODD_TRUE,
    CODD_TRUTH_VALUES,
    MAYBE,
    CoddTruth,
    codd_compare,
    from_core_truth,
    to_core_truth,
)
from .algebra import (
    codd_difference,
    codd_intersection,
    codd_product,
    codd_project,
    codd_select,
    codd_union,
    join_maybe,
    join_true,
    outer_join,
    select_attrs_maybe,
    select_attrs_true,
    select_maybe,
    select_predicate_maybe,
    select_predicate_true,
    select_true,
)
from .containment import (
    containment_truth,
    equality_truth,
    intersection_contained_truth,
    null_sites,
    substitution_truth,
    union_contains_truth,
)
from .division import divide_maybe, divide_true

__all__ = [
    "CODD_FALSE", "CODD_TRUE", "CODD_TRUTH_VALUES", "MAYBE", "CoddTruth",
    "codd_compare", "from_core_truth", "to_core_truth",
    "codd_difference", "codd_intersection", "codd_product", "codd_project",
    "codd_select", "codd_union", "join_maybe", "join_true", "outer_join",
    "select_attrs_maybe", "select_attrs_true", "select_maybe",
    "select_predicate_maybe", "select_predicate_true", "select_true",
    "containment_truth", "equality_truth", "intersection_contained_truth",
    "null_sites", "substitution_truth", "union_contains_truth",
    "divide_maybe", "divide_true",
]
