"""Codd's TRUE and MAYBE division, for the Section 6 comparison (experiment E6).

The paper contrasts three readings of the query

    Q: find each supplier who supplies every part supplied by s2

over the PARTS-SUPPLIERS relation of display (6.6):

* Codd's TRUE division answers Q1 ("who, *for sure*, supplies every part
  which *may* be supplied by s2") and returns the empty set;
* Codd's MAYBE division answers Q2 ("who *may* be supplying every part
  supplied *for sure* by s2") and returns {s1, s2, s3};
* Zaniolo's division (``repro.core.algebra.divide``) answers Q3 ("who,
  for sure, supplies every part supplied for sure by s2") and returns
  {s1, s2}.

The TRUE answer exposes the paradox the paper highlights: "for sure, s2
does not supply all the parts s2 supplies".

Codd's divisions are implemented here directly from their quantifier
readings: a candidate Y-value ``y`` qualifies in the TRUE version when for
*every* divisor row ``z`` there is a dividend row matching ``(y, z)``
certainly (all comparisons TRUE), and in the MAYBE version when every
divisor row is matched at least possibly (TRUE or MAYBE) and the candidate
is not already in the TRUE answer.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from ..core.errors import AlgebraError
from ..core.relation import Relation, RelationSchema
from ..core.tuples import XTuple
from .threevalued import CODD_FALSE, CODD_TRUE, MAYBE, CoddTruth, codd_compare, conjunction


def _candidates(dividend: Relation, by: Sequence[str]) -> Set[XTuple]:
    """Distinct Y-total Y-values occurring in the dividend."""
    return {r.project(by) for r in dividend.tuples() if r.is_total_on(by)}


def _match_truth(row: XTuple, y: XTuple, by: Sequence[str], z: XTuple, z_attrs: Sequence[str]) -> CoddTruth:
    """Truth value of "row represents the pair (y, z)" in Codd's logic."""
    comparisons: List[CoddTruth] = []
    for attribute in by:
        comparisons.append(codd_compare(row[attribute], "=", y[attribute]))
    for attribute in z_attrs:
        comparisons.append(codd_compare(row[attribute], "=", z[attribute]))
    return conjunction(comparisons)


def _divisor_attrs(dividend: Relation, divisor: Relation, by: Sequence[str]) -> List[str]:
    attrs = [a for a in divisor.scope()]
    if not attrs:
        attrs = [a for a in divisor.schema.attributes if a in dividend.schema and a not in by]
    overlap = [a for a in attrs if a in by]
    if overlap:
        raise AlgebraError(f"divisor attributes {overlap} overlap the division attributes {list(by)}")
    for a in attrs:
        if a not in dividend.schema:
            raise AlgebraError(f"divisor attribute {a!r} does not appear in the dividend")
    return attrs


def _membership_truth(
    dividend: Relation, y: XTuple, by: Sequence[str], z: XTuple, z_attrs: Sequence[str]
) -> CoddTruth:
    """Best truth value, over dividend rows, of "(y, z) is in the dividend"."""
    best = CODD_FALSE
    for row in dividend.tuples():
        truth = _match_truth(row, y, by, z, z_attrs)
        if truth.is_true():
            return CODD_TRUE
        if truth.is_maybe():
            best = MAYBE
    return best


def divide_true(dividend: Relation, divisor: Relation, by: Sequence[str]) -> Relation:
    """Codd's TRUE division: every divisor row must be matched certainly."""
    by = tuple(by)
    dividend.schema.require(by)
    z_attrs = _divisor_attrs(dividend, divisor, by)
    schema = dividend.schema.project(by, name=f"({dividend.name} ÷T {divisor.name})")
    out = Relation(schema, validate=False)
    rows: Set[XTuple] = set()
    divisor_rows = list(divisor.tuples())
    for y in _candidates(dividend, by):
        if all(
            _membership_truth(dividend, y, by, z, z_attrs).is_true()
            for z in divisor_rows
        ):
            rows.add(y)
    out._rows = rows
    return out


def divide_maybe(dividend: Relation, divisor: Relation, by: Sequence[str]) -> Relation:
    """Codd's MAYBE division: every divisor row matched at least possibly.

    Candidates already in the TRUE answer are excluded, mirroring the
    TRUE/MAYBE partition of the selection operators.
    """
    by = tuple(by)
    dividend.schema.require(by)
    z_attrs = _divisor_attrs(dividend, divisor, by)
    schema = dividend.schema.project(by, name=f"({dividend.name} ÷M {divisor.name})")
    sure = set(divide_true(dividend, divisor, by).tuples())
    out = Relation(schema, validate=False)
    rows: Set[XTuple] = set()
    divisor_rows = list(divisor.tuples())
    for y in _candidates(dividend, by):
        if y in sure:
            continue
        if all(
            not _membership_truth(dividend, y, by, z, z_attrs).is_false()
            for z in divisor_rows
        ):
            rows.add(y)
    out._rows = rows
    return out
