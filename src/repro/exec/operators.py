"""Physical operators: the pull-based, batch-at-a-time executor nodes.

Each operator is one node of a physical plan tree in the style of
Graefe's Volcano iterator model, except that the unit of exchange is a
*block* (a list of :class:`~repro.core.tuples.XTuple`, MonetDB/X100
style) rather than a single row — the per-call overhead of a Python
generator is paid once per block instead of once per tuple.  An operator
pulls blocks from its child(ren) through :meth:`PhysicalOperator.blocks`,
which also instruments the node: every node records the rows it produced
(``actual_rows``), the blocks it emitted and the wall time spent in its
iterator (inclusive of its children, like ``EXPLAIN ANALYZE``), so a
drained tree doubles as a per-operator execution audit.

Non-blocking operators (:class:`Filter`, :class:`Rename`,
:class:`Project`, the probe sides of :class:`HashJoin` /
:class:`IndexNLJoin`, :class:`Product`) stream rows through without ever
building an intermediate :class:`~repro.core.xrelation.XRelation`; the
blocking ones (:class:`Reduce`, :class:`Materialize`, the build sides of
the joins) drain their input first, exactly where a pipeline breaker is
semantically required.  Row-level semantics are shared with the
materializing path through the kernels in :mod:`repro.core.algebra`
(``select_constant_rows`` / ``select_predicate_rows`` / ``rename_rows``)
and :mod:`repro.core.engine.joins` (``build_join_buckets`` /
``probe_join_block``), so the streaming and the materializing executor
cannot drift apart on null handling — and the differential harness in
``tests/test_differential_planner.py`` pins it.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.algebra import select_predicate_rows
from ..core.engine.dominance import bulk_reduce
from ..core.engine.joins import build_join_buckets, probe_join_block
from ..core.relation import Relation, RelationSchema
from ..core.tuples import XTuple
from ..core.xrelation import XRelation

#: Default number of tuples per exchanged block.
BLOCK_SIZE = 256

Block = List[XTuple]


class PhysicalOperator:
    """Base class: one instrumented node of a physical operator tree.

    Subclasses implement :meth:`_blocks`, a generator of tuple blocks;
    :meth:`blocks` wraps it with the per-node instrumentation.  A node is
    single-use — draining it consumes its input and freezes its
    ``actual_rows`` / ``seconds`` counters; compile a fresh tree to run
    again (tree construction is a few object allocations per node).
    """

    #: Human-readable node label, e.g. ``"HashJoin(s.B = b2.B)"``.
    label: str = "?"

    def __init__(
        self,
        children: Sequence["PhysicalOperator"] = (),
        *,
        label: Optional[str] = None,
        est: Optional[float] = None,
        block_size: int = BLOCK_SIZE,
    ):
        self.children: Tuple[PhysicalOperator, ...] = tuple(children)
        if label is not None:
            self.label = label
        #: The optimizer's estimated output rows (``None`` off the cost path).
        self.est = est
        self.block_size = block_size
        #: Rows actually produced, populated while the tree drains.
        self.actual_rows = 0
        #: Blocks actually emitted.
        self.actual_blocks = 0
        #: Wall seconds spent inside this node's iterator (children included).
        self.seconds = 0.0
        self.started = False
        self.finished = False

    # -- iteration -------------------------------------------------------------
    def _blocks(self) -> Iterator[Block]:
        raise NotImplementedError

    def blocks(self) -> Iterator[Block]:
        """Pull instrumented blocks: counts rows/blocks, accumulates time."""
        self.started = True
        inner = self._blocks()
        while True:
            begin = perf_counter()
            try:
                block = next(inner)
            except StopIteration:
                self.seconds += perf_counter() - begin
                self.finished = True
                return
            self.seconds += perf_counter() - begin
            self.actual_rows += len(block)
            self.actual_blocks += 1
            yield block

    def rows(self) -> Iterator[XTuple]:
        """Row-at-a-time convenience view over :meth:`blocks`."""
        for block in self.blocks():
            yield from block

    # -- helpers ----------------------------------------------------------------
    def _reblock(self, rows: Iterable[XTuple]) -> Iterator[Block]:
        """Chop an iterable of rows into fixed-size blocks."""
        size = self.block_size
        block: Block = []
        for row in rows:
            block.append(row)
            if len(block) >= size:
                yield block
                block = []
        if block:
            yield block

    def describe(self) -> str:
        return self.label

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label!r}, rows={self.actual_rows})"


# ---------------------------------------------------------------------------
# Leaf sources
# ---------------------------------------------------------------------------

class TableScan(PhysicalOperator):
    """Stream the stored rows of a range, one block at a time.

    *rows* is the row iterable — typically the live
    ``relation.tuples()`` of a stored table — snapshotted **at
    construction**: operator trees are built when the statement
    executes, so a lazy result set keeps statement-time snapshot
    semantics (the row *references* are captured, not copies), and a
    mutation between execution and iteration can neither crash the drain
    mid-set nor leak post-statement rows into the answer.  Null tuples
    (rows binding nothing) are information-free and skipped, mirroring
    the reduction the materializing path applies when it first wraps a
    range.
    """

    def __init__(self, rows: Iterable[XTuple], **kwargs: Any):
        super().__init__((), **kwargs)
        self.source = list(rows)

    def _blocks(self) -> Iterator[Block]:
        def rows() -> Iterator[XTuple]:
            for row in self.source:
                if not row.is_null_tuple():
                    yield row
            self.source = []  # release the snapshot once fully streamed

        return self._reblock(rows())


class IndexProbe(PhysicalOperator):
    """Serve a pushed equality selection from one persistent-index bucket.

    *lookup* is the bound :meth:`HashIndex.lookup` of the covering index;
    *probe* the value tuple in the index's key order.  The bucket is
    probed at construction (statement-time snapshot, like
    :class:`TableScan` — the live bucket view must not be iterated while
    later mutations resize it).  Rows null on a probed attribute are
    absent from the bucket by the index's own protocol, exactly the
    TRUE-only equality semantics.
    """

    def __init__(
        self,
        lookup: Callable[[Sequence[Any]], Iterable[XTuple]],
        probe: Sequence[Any],
        **kwargs: Any,
    ):
        super().__init__((), **kwargs)
        self.probe = tuple(probe)
        self.bucket = list(lookup(self.probe))

    def _blocks(self) -> Iterator[Block]:
        def rows() -> Iterator[XTuple]:
            yield from self.bucket
            self.bucket = []  # release the snapshot once fully streamed

        return self._reblock(rows())


# ---------------------------------------------------------------------------
# Streaming (non-blocking) operators
# ---------------------------------------------------------------------------

class Filter(PhysicalOperator):
    """Keep the rows on which *predicate* is TRUE — streaming selection.

    *predicate* is a plain row predicate returning a bool or a
    :class:`~repro.core.threevalued.TruthValue`; only TRUE keeps the row
    (the Section 5 lower-bound discipline), via the shared
    :func:`repro.core.algebra.select_predicate_rows` kernel.
    """

    def __init__(self, child: PhysicalOperator, predicate, **kwargs: Any):
        super().__init__((child,), **kwargs)
        self.child = child
        self.predicate = predicate

    def _blocks(self) -> Iterator[Block]:
        predicate = self.predicate
        for block in self.child.blocks():
            kept = select_predicate_rows(block, predicate)
            if kept:
                yield kept


class Rename(PhysicalOperator):
    """Rename every row's attributes through *mapping* — streaming."""

    def __init__(self, child: PhysicalOperator, mapping: Dict[str, str], **kwargs: Any):
        super().__init__((child,), **kwargs)
        self.child = child
        self.mapping = dict(mapping)

    def _blocks(self) -> Iterator[Block]:
        mapping = self.mapping
        for block in self.child.blocks():
            yield [row.rename(mapping) for row in block]


class Project(PhysicalOperator):
    """Project onto the target list with output renaming — streaming.

    *targets* pairs each output column with the (qualified) input column
    it reads.  Exact duplicate output rows are suppressed with a running
    seen-set (a set probe per row — the streaming analogue of projecting
    into a set), so the operator's ``actual_rows`` matches the
    materializing path's projected row count on duplicate-heavy inputs;
    *dominated* rows are left for the final materialisation
    (:meth:`Pipeline.run <repro.exec.pipeline.Pipeline.run>`, or a
    :class:`Reduce`/:class:`Materialize` sink on a hand-built tree),
    which is where minimal form is restored.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        targets: Sequence[Tuple[str, str]],
        **kwargs: Any,
    ):
        super().__init__((child,), **kwargs)
        self.child = child
        self.targets = tuple(targets)

    def _blocks(self) -> Iterator[Block]:
        targets = self.targets
        seen: set = set()
        for block in self.child.blocks():
            out: Block = []
            for row in block:
                projected = XTuple(
                    (output, row[qualified]) for output, qualified in targets
                )
                # An all-null projection is information-free (Definition
                # 4.6 drops it from every minimal form) — never emit it.
                if projected not in seen and not projected.is_null_tuple():
                    seen.add(projected)
                    out.append(projected)
            if out:
                yield out


class HashJoin(PhysicalOperator):
    """Composite-key hash equi-join: blocking build side, streaming probe.

    The *build* child is drained once into hash buckets keyed on
    *build_attrs* (:func:`repro.core.engine.joins.build_join_buckets` —
    rows null on any key attribute never enter a bucket); then each
    probe-side block streams through :func:`probe_join_block`.  Matched
    build rows pass through *transform* (the planner's late
    ``variable.``-prefix rename), memoised per distinct row across the
    whole join, so the bulk of a big build side is never copied.

    *residual* (optional) is a fused residual predicate over the
    ``(probe row, raw build row)`` pair, checked *before* the joined
    tuple is constructed — the planner attaches one when a deferred
    residual conjunct becomes applicable exactly at this join, so
    non-qualifying pairs never cost a tuple construction.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        build: PhysicalOperator,
        build_attrs: Sequence[str],
        probe_attrs: Sequence[str],
        transform: Callable[[XTuple], XTuple] = lambda row: row,
        residual: Optional[Callable[[XTuple, XTuple], bool]] = None,
        **kwargs: Any,
    ):
        super().__init__((child, build), **kwargs)
        self.child = child
        self.build = build
        self.build_attrs = tuple(build_attrs)
        self.probe_attrs = tuple(probe_attrs)
        self.transform = transform
        self.residual = residual

    def _blocks(self) -> Iterator[Block]:
        buckets = build_join_buckets(self.build.rows(), self.build_attrs)
        if not buckets:
            return
        empty: Tuple[XTuple, ...] = ()
        lookup = lambda key: buckets.get(key, empty)  # noqa: E731
        cache: Dict[XTuple, XTuple] = {}
        for block in self.child.blocks():
            out = probe_join_block(
                block, self.probe_attrs, lookup, self.transform, cache,
                self.residual,
            )
            if out:
                yield out


class IndexNLJoin(PhysicalOperator):
    """Index-nested-loop equi-join probing a *live* persistent index.

    No build side at all: each probe-side row looks its key up in the
    table's own :class:`~repro.storage.index.HashIndex` (*lookup*), so
    the joined range is never scanned, renamed or bucketed — the
    streaming form of :func:`repro.core.engine.joins.index_probe_join_rows`.
    Probing the *live* index is the point of the operator: a pipeline
    left undrained across table mutations reads the index as it stands
    at each pull (drain promptly, or use the materializing path, when
    statement-time semantics must extend across later mutations).
    """

    def __init__(
        self,
        child: PhysicalOperator,
        lookup: Callable[[Tuple], Iterable[XTuple]],
        probe_attrs: Sequence[str],
        transform: Callable[[XTuple], XTuple] = lambda row: row,
        residual: Optional[Callable[[XTuple, XTuple], bool]] = None,
        **kwargs: Any,
    ):
        super().__init__((child,), **kwargs)
        self.child = child
        self.lookup = lookup
        self.probe_attrs = tuple(probe_attrs)
        self.transform = transform
        self.residual = residual

    def _blocks(self) -> Iterator[Block]:
        cache: Dict[XTuple, XTuple] = {}
        for block in self.child.blocks():
            out = probe_join_block(
                block, self.probe_attrs, self.lookup, self.transform, cache,
                self.residual,
            )
            if out:
                yield out


class Product(PhysicalOperator):
    """Cartesian product (5.3): blocking right side, streaming left.

    The right child is drained once and transformed (renamed) up front;
    every left row then joins every right row.  Null tuples contribute
    nothing per the definition — the sources already drop them.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        right: PhysicalOperator,
        transform: Callable[[XTuple], XTuple] = lambda row: row,
        **kwargs: Any,
    ):
        super().__init__((child, right), **kwargs)
        self.child = child
        self.right = right
        self.transform = transform

    def _blocks(self) -> Iterator[Block]:
        def joined() -> Iterator[XTuple]:
            # Inside the generator so the blocking right-side drain runs
            # under this node's timing, not the caller's.
            transform = self.transform
            right_rows = [transform(row) for row in self.right.rows()]
            if not right_rows:
                return
            for block in self.child.blocks():
                for left in block:
                    for right in right_rows:
                        yield left.join(right)

        # Re-blocked: one input block fans out |block|·|right| ways, so
        # the output must be chopped back down to bounded blocks.
        return self._reblock(joined())


# ---------------------------------------------------------------------------
# Blocking operators
# ---------------------------------------------------------------------------

class Reduce(PhysicalOperator):
    """Reduction to minimal form (Definition 4.6) — a pipeline breaker.

    Wraps :func:`repro.core.engine.dominance.bulk_reduce`: the input must
    be complete before any dominated row can be ruled out, so the child
    is drained first and the minimal rows are re-emitted in blocks.
    The planner's compiled trees defer all reduction to the single final
    materialisation (:meth:`Pipeline.run`), so this operator serves
    hand-built trees — and is the merge point a sharded (per-partition)
    pipeline will need.
    """

    def __init__(self, child: PhysicalOperator, **kwargs: Any):
        kwargs.setdefault("label", "Reduce")
        super().__init__((child,), **kwargs)
        self.child = child

    def _blocks(self) -> Iterator[Block]:
        def reduced() -> Iterator[XTuple]:
            # Inside the generator so the blocking drain + reduction run
            # under this node's timing, not the caller's.
            staged: List[XTuple] = []
            for block in self.child.blocks():
                staged.extend(block)
            yield from bulk_reduce(staged)

        return self._reblock(reduced())


class Materialize(PhysicalOperator):
    """Drain the pipeline into an :class:`XRelation` — the tree's sink.

    The drained rows are housed under *schema* and reduced to minimal
    form by the x-relation invariant itself; :meth:`relation` caches the
    result, so a drained tree can be asked again for free.  Planner
    pipelines materialise through :meth:`Pipeline.run` (which must also
    support partial lazy consumption); this operator is the equivalent
    sink for hand-built trees.
    """

    def __init__(self, child: PhysicalOperator, schema: RelationSchema, **kwargs: Any):
        kwargs.setdefault("label", f"Materialize {schema.name}")
        super().__init__((child,), **kwargs)
        self.child = child
        self.schema = schema
        self._result: Optional[XRelation] = None

    def _blocks(self) -> Iterator[Block]:
        def materialized() -> Iterator[XTuple]:
            # Inside the generator so the blocking drain runs under this
            # node's timing, not the caller's.
            yield from self.relation().rows()

        return self._reblock(materialized())

    def relation(self) -> XRelation:
        if self._result is None:
            rows: set = set()
            for block in self.child.blocks():
                rows.update(block)
            relation = Relation(self.schema, validate=False)
            relation._rows = rows
            self._result = XRelation(relation)
        return self._result
