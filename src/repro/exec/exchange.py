"""Exchange/Merge: parallel partitioned execution over shard workers.

The classic Volcano exchange-operator design (Graefe, "Volcano — An
Extensible and Parallel Query Evaluation System"), adapted to this
executor's block streams and to the paper's information ordering:

* :class:`PlanFragment` is a **picklable recipe** for one partition's
  operator subtree.  Physical operators themselves close over lambdas
  (predicates, rename transforms) and cannot cross a process boundary,
  so the coordinator ships the *logical* steps — plain tuples over the
  picklable core predicate AST — and each worker rebuilds the real
  operator tree with :meth:`PlanFragment.build`.
* :func:`execute_fragment` is the worker entry point: build, drain,
  **locally reduce** the shard to minimal form (Definition 4.6), return
  the reduced rows plus per-step actuals.  Workers are shared-nothing:
  they receive pickled rows and the fragment, never a live ``Database``
  or index.
* :class:`Exchange` partitions the coordinator-resolved leaf rows (by
  fused join key for the plan's first hash join, by signature for
  reduce-heavy single-range plans), dispatches one fragment per
  partition to a shared-nothing :mod:`multiprocessing` worker process
  (fork context where available), and re-emits the shard results as
  ordinary blocks.  After
  the drain it exposes per-partition actuals — rows in/out, wall time,
  skew — as stub child nodes, so ``explain(analyze=True)`` renders the
  per-worker audit under the Exchange node.
* :class:`Merge` reconciles the shard frontier:
  :func:`repro.core.engine.dominance.merge_reduced` over the
  locally-reduced shards restores the *global* minimal form — correct
  for any partition function, because reduction only removes dominated
  rows and dominance is transitive
  (``reduce(reduce(S1) ∪ reduce(S2)) = reduce(S1 ∪ S2)``).

Partitioning correctness, briefly: the plan's start range is sharded
and every other range is either co-partitioned (the first join's build
side, hashed on the same fused key, so equal keys meet in the same
worker) or broadcast whole.  Each output row of the serial plan derives
from exactly one start-range row, so the shard outputs cover the serial
output; per-worker projection dedup and local reduction may differ from
the serial path row-for-row, which is exactly what the final Merge
reduce reconciles.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.engine.dominance import bulk_reduce, merge_reduced
from ..core.tuples import XTuple
from .operators import BLOCK_SIZE, Block, PhysicalOperator

__all__ = [
    "Exchange",
    "Merge",
    "PlanFragment",
    "execute_fragment",
    "partition_rows_by_key",
]


def partition_rows_by_key(
    rows: Sequence[XTuple], key_attrs: Sequence[str], partitions: int
) -> List[List[XTuple]]:
    """Shard *rows* by the hash of their value tuple on *key_attrs*.

    Equal keys land in the same shard, so hashing both sides of an
    equi-join on the fused key co-partitions them: every matching pair
    meets inside one worker.  Rows null on any key attribute can never
    satisfy the equality (the Section 5 TRUE-only discipline) and the
    join this partitioning serves gates the whole downstream plan, so
    they are dropped here instead of being shipped and dropped in every
    worker's build/probe phase.
    """
    if partitions < 1:
        raise ValueError(f"need at least one partition, got {partitions}")
    key = tuple(key_attrs)
    shards: List[List[XTuple]] = [[] for _ in range(partitions)]
    for row in rows:
        lookup = row._lookup
        values = tuple(lookup.get(a) for a in key)
        if None in values:  # _lookup stores only non-null bindings
            continue
        shards[hash(values) % partitions].append(row)
    return shards


class PlanFragment:
    """One partition's plan, as picklable data.

    *steps* mirrors the planner's logical ops one-for-one (including
    no-op ``rename`` entries, so per-step actuals align by index with
    the coordinator's trace):

    * ``("rename", variable)`` — no node (renaming is fused into joins);
    * ``("source", variable)`` — the range's rows were resolved at the
      coordinator (an index-selected bucket); the scan node serves them;
    * ``("select", variable, attribute, op, constant)`` — pushed
      constant selection over the unrenamed base rows;
    * ``("select-var", variable, conjunct)`` — pushed single-variable
      residual conjunct (a picklable core predicate);
    * ``("join", variable, pairs, residual)`` — composite-key hash join
      (always a hash join: workers hold no live indexes), with the
      optionally fused residual conjunct checked on each (probe, build)
      pair before the joined tuple is built;
    * ``("product", variable)`` — Cartesian product;
    * ``("residual", conjunct)`` — in-flight residual selection over the
      combined stream;
    * ``("project", targets)`` — final projection.

    ``build`` reconstructs the physical subtree against a *sources*
    mapping (variable → this partition's rows) and returns the root
    plus the per-step node list (``None`` for no-op steps).
    """

    __slots__ = ("steps", "mappings", "start", "variables")

    def __init__(
        self,
        steps: Sequence[Tuple],
        mappings: Dict[str, Dict[str, str]],
        start: str,
        variables: Sequence[str],
    ):
        self.steps = tuple(steps)
        self.mappings = mappings
        self.start = start
        self.variables = tuple(variables)

    def __getstate__(self):
        return (self.steps, self.mappings, self.start, self.variables)

    def __setstate__(self, state):
        self.steps, self.mappings, self.start, self.variables = state

    def build(
        self, sources: Dict[str, Sequence[XTuple]], block_size: int
    ) -> Tuple[PhysicalOperator, List[Optional[PhysicalOperator]]]:
        # Deferred imports: the planner imports this module, so the
        # reverse import must happen at build time, not module load.
        from ..core import algebra
        from ..quel.planner import (
            _pair_predicate,
            _residual_predicate,
            _single_variable_predicate,
        )
        from .operators import (
            Filter,
            HashJoin,
            Product,
            Project,
            Rename,
            TableScan,
        )

        chains: Dict[str, Optional[PhysicalOperator]] = {
            v: None for v in self.variables
        }

        def scan(variable: str) -> PhysicalOperator:
            node = chains[variable]
            if node is None:
                node = TableScan(
                    sources.get(variable, ()),
                    label=f"Scan {variable}",
                    block_size=block_size,
                )
                chains[variable] = node
            return node

        def transform_for(variable: str):
            mapping = self.mappings[variable]
            return lambda row, _mapping=mapping: row.rename(_mapping)

        combined: Optional[PhysicalOperator] = None

        def combined_node() -> PhysicalOperator:
            nonlocal combined
            if combined is None:
                start = self.start
                combined = Rename(
                    scan(start), self.mappings[start],
                    label=f"Rename {start}.*", block_size=block_size,
                )
            return combined

        nodes: List[Optional[PhysicalOperator]] = []
        for step in self.steps:
            kind = step[0]
            if kind == "rename":
                nodes.append(None)
            elif kind == "source":
                nodes.append(scan(step[1]))
            elif kind == "select":
                _, variable, attribute, op, constant = step
                node = Filter(
                    scan(variable),
                    algebra.constant_predicate(attribute, op, constant),
                    label=f"Filter {variable}.{attribute} {op} {constant!r}",
                    block_size=block_size,
                )
                chains[variable] = node
                nodes.append(node)
            elif kind == "select-var":
                _, variable, conjunct = step
                node = Filter(
                    scan(variable),
                    _single_variable_predicate(conjunct, variable),
                    label=f"Filter {conjunct!r} ({variable})",
                    block_size=block_size,
                )
                chains[variable] = node
                nodes.append(node)
            elif kind == "join":
                _, variable, pairs, residual = step
                build_attrs = [new.attribute for _, new in pairs]
                probe_attrs = [
                    f"{old.variable}.{old.attribute}" for old, _ in pairs
                ]
                node = HashJoin(
                    combined_node(), scan(variable), build_attrs, probe_attrs,
                    transform_for(variable),
                    residual=(
                        _pair_predicate(residual, variable)
                        if residual is not None else None
                    ),
                    label=f"HashJoin with {variable}",
                    block_size=block_size,
                )
                combined = node
                nodes.append(node)
            elif kind == "product":
                _, variable = step
                node = Product(
                    combined_node(), scan(variable), transform_for(variable),
                    label=f"Product with {variable}", block_size=block_size,
                )
                combined = node
                nodes.append(node)
            elif kind == "residual":
                _, conjunct = step
                node = Filter(
                    combined_node(),
                    _residual_predicate(conjunct, list(self.variables)),
                    label=f"Filter {conjunct!r}", block_size=block_size,
                )
                combined = node
                nodes.append(node)
            elif kind == "project":
                _, targets = step
                node = Project(
                    combined_node(), targets, label="Project",
                    block_size=block_size,
                )
                combined = node
                nodes.append(node)
            else:
                raise ValueError(f"unknown fragment step kind {kind!r}")
        return combined_node(), nodes


def execute_fragment(payload) -> Tuple[int, List[XTuple], Dict[str, Any]]:
    """The worker entry point: build, drain, locally reduce one shard.

    *payload* is ``(index, fragment, sources, block_size)``.  Returns
    the partition index, the shard's **minimal-form** rows (local
    reduction — the Merge side of the exchange only has to reconcile
    across shards), and a stats mapping: ``raw_rows`` (pre-reduction
    output), ``rows_out``, ``seconds`` and the per-step ``step_rows``
    aligned with the fragment's step list (``None`` for no-op steps).
    """
    index, fragment, sources, block_size = payload
    begin = perf_counter()
    root, nodes = fragment.build(sources, block_size)
    staged: List[XTuple] = []
    for block in root.blocks():
        staged.extend(block)
    reduced = bulk_reduce(staged)
    stats = {
        "raw_rows": len(staged),
        "rows_out": len(reduced),
        "seconds": perf_counter() - begin,
        "step_rows": [
            node.actual_rows if node is not None else None for node in nodes
        ],
    }
    return index, reduced, stats


def _fork_context():
    """The worker context: fork where the platform offers it (cheap
    worker start, inherited modules), the default context otherwise."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def _fragment_worker(result_queue, payload) -> None:
    """Per-process wrapper around :func:`execute_fragment`: every
    outcome — result or exception — travels back through the queue, so
    the coordinator never has to infer what happened from an exit code
    (except for deaths by signal, which cannot report)."""
    try:
        result = execute_fragment(payload)
    except BaseException as exc:  # noqa: BLE001 — transported, re-raised
        try:
            result_queue.put(("error", exc))
        except Exception:
            # The exception itself would not pickle; ship its repr.
            result_queue.put(("error", RuntimeError(repr(exc))))
        return
    result_queue.put(("ok", result))


class Exchange(PhysicalOperator):
    """Run one plan fragment per partition in worker processes.

    *fragment* is the shared :class:`PlanFragment`; *partitions* the
    per-worker source mappings (variable → rows: a shard of the
    partitioned ranges, the full rows of broadcast ranges).  *mode* is
    ``"process"`` (one :mod:`multiprocessing` process per partition,
    fork context where available) or ``"inline"`` (run the fragments
    sequentially in this process — the automatic fallback when
    multiprocessing is unusable, and the cheap mode for correctness
    fuzzing).

    Results are yielded as ordinary blocks as partitions complete
    (whichever worker reports first).  A worker exception propagates
    out of the block iterator — the owning
    :class:`~repro.exec.pipeline.Pipeline` latches it — and every
    worker is always terminated and joined with a bounded wait, so a
    failed query leaves no orphaned processes.

    After the drain the operator carries the per-partition audit:
    :attr:`partition_stats` (rows in/out, seconds per worker),
    :attr:`skew` (max/mean of the partitioned input rows), stub child
    nodes for ``render_tree`` so ``explain(analyze=True)`` shows each
    worker's actuals, and the aligned :attr:`trace_steps` get their
    aggregated row counts.
    """

    def __init__(
        self,
        fragment: PlanFragment,
        partitions: Sequence[Dict[str, Sequence[XTuple]]],
        *,
        partitioned_rows: Optional[Sequence[int]] = None,
        mode: str = "process",
        trace_steps: Sequence = (),
        **kwargs: Any,
    ):
        kwargs.setdefault(
            "label", f"Exchange [{len(partitions)} partitions, {mode}]"
        )
        super().__init__((), **kwargs)
        if mode not in ("process", "inline"):
            raise ValueError(f"unknown exchange mode {mode!r}")
        self.fragment = fragment
        self.partitions = list(partitions)
        #: Partitioned (non-broadcast) input rows per partition — the
        #: numbers the skew is computed over.
        self.partitioned_rows = list(
            partitioned_rows
            if partitioned_rows is not None
            else [
                sum(len(rows) for rows in sources.values())
                for sources in self.partitions
            ]
        )
        self.mode = mode
        self.trace_steps = tuple(trace_steps)
        #: Per-partition worker stats, filled while the exchange drains.
        self.partition_stats: List[Optional[Dict[str, Any]]] = [
            None for _ in self.partitions
        ]
        #: max/mean of the partitioned input rows (1.0 = perfectly even).
        self.skew: Optional[float] = None
        self._audited = False

    # -- dispatch --------------------------------------------------------------
    def _payloads(self) -> List[Tuple]:
        return [
            (i, self.fragment, sources, self.block_size)
            for i, sources in enumerate(self.partitions)
        ]

    def _results(self) -> Iterator[Tuple[int, List[XTuple], Dict[str, Any]]]:
        payloads = self._payloads()
        if self.mode == "inline" or len(payloads) <= 1:
            for payload in payloads:
                yield execute_fragment(payload)
            return
        try:
            ctx = _fork_context()
        except (ImportError, NotImplementedError, OSError):
            for payload in payloads:
                yield execute_fragment(payload)
            return
        # One bare Process per partition, results through one queue.
        # Deliberately NOT multiprocessing.Pool: its coordinator-side
        # handler threads have shutdown races under a fork start method
        # that can deadlock terminate()/join(); plain processes keep the
        # coordinator single-threaded and every wait bounded.
        from queue import Empty

        result_queue = ctx.Queue()
        workers = [
            ctx.Process(
                target=_fragment_worker, args=(result_queue, payload),
                daemon=True,
            )
            for payload in payloads
        ]
        for worker in workers:
            worker.start()
        try:
            pending = len(workers)
            while pending:
                try:
                    kind, value = result_queue.get(timeout=0.1)
                except Empty:
                    # No result yet: a worker killed by a signal can
                    # never report, so poll for silent deaths (exitcode
                    # 0 with results still in flight is fine).
                    dead = [
                        w for w in workers
                        if not w.is_alive() and w.exitcode not in (0, None)
                    ]
                    if dead:
                        raise RuntimeError(
                            f"exchange worker died with exit code "
                            f"{dead[0].exitcode}"
                        )
                    continue
                pending -= 1
                if kind == "error":
                    raise value
                yield value
        finally:
            # Always reached — normal exit, a worker error, or the
            # consumer abandoning the generator (GeneratorExit): every
            # worker is terminated and joined with a bounded wait, never
            # orphaned.
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
            for worker in workers:
                worker.join(timeout=5)
                if worker.is_alive():
                    worker.kill()
                    worker.join(timeout=5)
            result_queue.close()

    def _blocks(self) -> Iterator[Block]:
        for index, rows, stats in self._results():
            self.partition_stats[index] = stats
            yield from self._reblock(rows)
        self._record_audit()

    # -- the post-drain audit --------------------------------------------------
    def _record_audit(self) -> None:
        if self._audited:
            return
        self._audited = True
        counts = self.partitioned_rows
        if counts:
            mean = sum(counts) / len(counts)
            self.skew = (max(counts) / mean) if mean > 0 else 1.0
            self.label += f" skew={self.skew:.2f}"
        stubs: List[PhysicalOperator] = []
        for i, stats in enumerate(self.partition_stats):
            rows_in = counts[i] if i < len(counts) else 0
            if stats is None:
                stub = PhysicalOperator(
                    (), label=f"partition {i} [rows_in={rows_in}, not run]"
                )
            else:
                stub = PhysicalOperator(
                    (),
                    label=(
                        f"partition {i} [rows_in={rows_in}, "
                        f"raw={stats['raw_rows']}, reduced={stats['rows_out']}]"
                    ),
                )
                stub.started = True
                stub.finished = True
                stub.actual_rows = stats["rows_out"]
                stub.seconds = stats["seconds"]
            stubs.append(stub)
        self.children = tuple(stubs)
        # Aggregate per-step actuals into the coordinator's trace: the
        # sum over workers (shard streams may overlap on rows a serial
        # run would deduplicate earlier; the counts are honest per-worker
        # work, which is what a parallel trace should report).
        for i, step in enumerate(self.trace_steps):
            total: Optional[int] = None
            for stats in self.partition_stats:
                if stats is None:
                    continue
                step_rows = stats["step_rows"]
                if i < len(step_rows) and step_rows[i] is not None:
                    total = (total or 0) + step_rows[i]
            if total is not None and getattr(step, "fixed_rows", 0) is None:
                step.fixed_rows = total


class Merge(PhysicalOperator):
    """Reconcile the shard frontier: the blocking end of an exchange.

    Drains the child (an :class:`Exchange`) and applies
    :func:`repro.core.engine.dominance.merge_reduced` over the collected
    shard blocks — each worker already reduced its own shard to minimal
    form, so this single pass restores the *global* minimal form and
    removes cross-shard duplicates, discharging the pipeline contract
    that the root operator de-duplicates.
    """

    def __init__(self, child: PhysicalOperator, **kwargs: Any):
        kwargs.setdefault("label", "Merge [reduce shard frontier]")
        super().__init__((child,), **kwargs)
        self.child = child

    def _blocks(self) -> Iterator[Block]:
        def merged() -> Iterator[XTuple]:
            # Inside the generator so the blocking drain + reduction run
            # under this node's timing, not the caller's.
            shards: List[Block] = list(self.child.blocks())
            yield from merge_reduced(shards)

        return self._reblock(merged())
