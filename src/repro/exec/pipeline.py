"""Pipelines: a compiled operator tree plus its execution trace.

A :class:`Pipeline` is what the planner's streaming compiler hands back:
the root :class:`~repro.exec.operators.PhysicalOperator` of a physical
tree, the output schema, and the ordered :class:`TraceStep` list that
maps the logical plan's step lines onto the physical nodes producing
their rows.  It supports two consumption styles:

* :meth:`iter_rows` — *lazy*: pull blocks on demand and yield the raw
  output rows as they arrive, without constructing any intermediate
  :class:`~repro.core.xrelation.XRelation`.  The streamed rows are
  pre-minimisation: with nulls present they may include rows a minimal
  representation would drop (each dominated by a streamed sibling), so
  their union is always information-wise the answer.
* :meth:`run` — drain everything and return the canonical (minimal)
  :class:`XRelation`.  Partial lazy consumption is resumed, never
  repeated: the pipeline owns the single block iterator.

:class:`TraceStep` is also the shared rendering unit for the *logical*
step trace — the materializing executor and the pre-statistics syntactic
planner render their ``Plan.steps`` through the same class, so the
``[est=…, rows=…]`` annotations come from one format path everywhere.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.errors import StaleResultError
from ..core.relation import Relation, RelationSchema
from ..core.tuples import XTuple
from ..core.xrelation import XRelation
from .operators import PhysicalOperator


class StalenessGuard:
    """An execute-time stamp of a table a pipeline probes *live*.

    An index-nested-loop join is the one streaming operator that reads a
    persistent structure (the inner table's hash index) during the drain
    rather than snapshotting at execute time.  The planner creates one
    guard per such inner table, capturing the table's mutation counter
    (``Relation._version`` — bumped by every row change) and its
    physical-design epoch (``ddl_epoch`` — bumped by index changes and
    ANALYZE); :meth:`Pipeline._pull` re-checks the stamps before every
    fresh block, so an undrained result set whose probes would silently
    see post-statement state raises :class:`StaleResultError` instead.
    """

    __slots__ = ("table", "version", "ddl_epoch")

    def __init__(self, table):
        self.table = table
        self.version = table.relation._version
        self.ddl_epoch = table.ddl_epoch

    @property
    def stale(self) -> bool:
        return (
            self.table.relation._version != self.version
            or self.table.ddl_epoch != self.ddl_epoch
        )

    def check(self) -> None:
        if self.stale:
            raise StaleResultError(
                f"table {self.table.name!r} was mutated (or its indexes "
                f"changed) since this statement executed; its undrained "
                f"result set probes the table's live index and would see "
                f"post-statement rows.  Drain results before mutating "
                f"(ResultSet.rows does), or re-execute the statement."
            )


class TraceStep:
    """One logical plan step, rendered uniformly across executors.

    ``text`` is the step description (``"hash equi-join with d on …"``);
    ``est`` the optimizer's estimate (``None`` on the syntactic path,
    which never shows estimates); the measured row count comes either
    from ``fixed_rows`` (the materializing executor records it at step
    time) or live from ``node.actual_rows`` (the streaming executor's
    physical operator).  ``show_est`` lets the projection step keep its
    historical ``[rows=…]``-only annotation.  ``table`` optionally names
    the stored table a selection step's estimate was derived from — the
    adaptive-feedback loop folds that step's actual/estimated ratio back
    into the table's statistics when the pipeline drains.
    """

    __slots__ = ("text", "est", "node", "fixed_rows", "show_est", "table")

    def __init__(
        self,
        text: str,
        est: Optional[float] = None,
        node: Optional[PhysicalOperator] = None,
        fixed_rows: Optional[int] = None,
        show_est: bool = True,
        table=None,
    ):
        self.text = text
        self.est = est
        self.node = node
        self.fixed_rows = fixed_rows
        self.show_est = show_est
        self.table = table

    def rows(self) -> Optional[int]:
        if self.node is not None:
            return self.node.actual_rows if self.node.started else None
        return self.fixed_rows

    def render(self) -> str:
        rows = self.rows()
        parts = []
        if self.est is not None and self.show_est:
            parts.append(f"est={self.est:.0f}")
        if rows is not None:
            parts.append(f"rows={rows}")
        elif parts:
            parts.append("rows=?")
        if not parts:
            return self.text
        return f"{self.text} [{', '.join(parts)}]"


def render_tree(root: PhysicalOperator, analyze: bool = False) -> str:
    """Render an operator tree, one indented line per node.

    Without *analyze* each node shows its label and estimate; with it the
    node also reports what actually happened while the tree drained:
    ``est=`` (the model's estimated rows) followed by ``actual rows=``
    (rows the node really produced) and ``time=`` (wall time spent in
    the node's iterator, children included, like ``EXPLAIN ANALYZE``).
    ``rows=`` therefore always means a *measured* count, here and in the
    step trace alike; the estimate only ever appears as ``est=``.
    """
    lines: List[str] = []

    def visit(node: PhysicalOperator, depth: int) -> None:
        parts: List[str] = []
        if node.est is not None:
            parts.append(f"est={node.est:.0f}")
        if analyze:
            parts.append(f"actual rows={node.actual_rows}")
            parts.append(f"time={node.seconds * 1000.0:.3f}ms")
            if node.started and not node.finished:
                # A node still mid-stream would otherwise pass its
                # partial counts off as finals.
                parts.append("(partial)")
        annotation = f" [{' '.join(parts)}]" if parts else ""
        lines.append(f"{'  ' * depth}{node.label}{annotation}")
        for child in node.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


class Pipeline:
    """A compiled, single-use physical plan ready to stream or drain."""

    def __init__(
        self,
        root: PhysicalOperator,
        schema: RelationSchema,
        trace: Sequence[TraceStep] = (),
        guards: Sequence[StalenessGuard] = (),
        database_epoch: Optional[int] = None,
        on_complete=None,
    ):
        self.root = root
        self.schema = schema
        self.trace: List[TraceStep] = list(trace)
        #: Staleness stamps for tables this tree probes live (one per
        #: index-nested-loop inner table); checked before every fresh
        #: block pull.  Empty for trees that snapshot all their inputs.
        self.guards: List[StalenessGuard] = list(guards)
        #: The database's catalog/index/stats epoch at execute time (None
        #: when the compiler had no database in reach).
        self.database_epoch = database_epoch
        self._blocks: Optional[Iterator[List[XTuple]]] = None
        self._ordered: List[XTuple] = []
        self._exhausted = False
        self._result: Optional[XRelation] = None
        self._error: Optional[BaseException] = None
        #: True once :meth:`run` has cached the canonical answer and
        #: dropped the streamed-row buffer.
        self._released = False
        #: Called exactly once as ``on_complete(pipeline, error)`` when
        #: the tree exhausts (``error=None``) or latches a failure — the
        #: observability layer's hook for folding drain-side actuals into
        #: the statement's trace.  Assignable after construction.
        self.on_complete = on_complete
        self._completed = False

    def _notify_complete(self, error: Optional[BaseException]) -> None:
        if self._completed:
            return
        self._completed = True
        callback = self.on_complete
        if callback is not None:
            try:
                callback(self, error)
            except Exception:
                pass  # observability must never break the query path

    @property
    def columns(self) -> Tuple[str, ...]:
        return self.schema.attributes

    @property
    def drained(self) -> bool:
        return self._exhausted

    # -- consumption -----------------------------------------------------------
    def _pull(self) -> bool:
        """Advance by one block; False when the tree is exhausted.

        An operator error latches: a generator that raised is closed and
        would report plain ``StopIteration`` on the next pull, silently
        passing off the partial prefix as the canonical answer — so the
        failure is remembered and re-raised on every later consumption.
        """
        if self._error is not None:
            raise self._error
        if self._exhausted:
            return False
        for guard in self.guards:
            try:
                guard.check()
            except BaseException as error:
                self._error = error
                self._notify_complete(error)
                raise
        if self._blocks is None:
            self._blocks = self.root.blocks()
        try:
            block = next(self._blocks)
        except StopIteration:
            self._exhausted = True
            self._notify_complete(None)
            return False
        except BaseException as error:
            self._error = error
            self._notify_complete(error)
            raise
        self._ordered.extend(block)
        return True

    def iter_rows(self) -> Iterator[XTuple]:
        """Yield output rows lazily, pulling blocks only as needed.

        Distinctness is the root operator's contract (the planner always
        tops its trees with a de-duplicating :class:`Project`); rows
        already pulled — by an earlier iterator or a partial drain — are
        replayed from the accumulated prefix, so concurrent iterators see
        the same sequence.  Once :meth:`run` has cached the canonical
        answer the streamed-row buffer is released: iterators already in
        flight complete over the full streamed sequence (they hold the
        buffer), while fresh ones replay the canonical rows.
        """
        if self._released:
            yield from self._result.rows()
            return
        ordered = self._ordered  # stable even if run() releases the buffer
        i = 0
        while True:
            while i < len(ordered):
                yield ordered[i]
                i += 1
            if self._released or not self._pull():
                break
        while i < len(ordered):
            yield ordered[i]
            i += 1

    def invalidate(self, error: BaseException) -> None:
        """Latch *error* onto an undrained pipeline so every later pull
        raises it (the session-close path: an open lazy result set whose
        session went away fails loudly instead of streaming on).  A
        pipeline that already finished — drained, released, or already
        latched — is left untouched: its cached answer stays readable.
        """
        if self._exhausted or self._released or self._error is not None:
            return
        self._error = error
        self._notify_complete(error)

    def run(self) -> XRelation:
        """Drain the tree and return the canonical minimal answer.

        The streamed-row buffer is dropped once the answer is cached — a
        retained result set should pin one copy of its rows, not two —
        and the leaf operators release their snapshots as they exhaust.
        """
        if self._result is None:
            while self._pull():
                pass
            # The on_complete hook (which fires during the final pull)
            # may already have installed the canonical answer via
            # completed_relation() — never rebuild over it: the streamed
            # buffer was released with it.
            if self._result is None:
                relation = Relation(self.schema, validate=False)
                relation._rows = set(self._ordered)
                self._result = XRelation(relation)
                self._ordered = []
                self._released = True
        return self._result

    def completed_relation(self) -> Optional[XRelation]:
        """The canonical answer of an already-exhausted pipeline, or
        ``None`` while anything is still in flight (or after a failure).

        Unlike :meth:`run` this never pulls: it is safe to call from
        inside the ``on_complete`` hook, which fires *during* the final
        pull — ``_ordered`` holds the full streamed output at that point
        but ``run`` has not yet cached (and must not be re-entered).  The
        answer built here is installed as the pipeline's canonical result
        (with the streamed buffer released, exactly as :meth:`run` does),
        so the result cache and a later ``run()`` share one
        :class:`XRelation` rather than materialising twice.
        """
        if self._result is not None:
            return self._result
        if not self._exhausted or self._error is not None:
            return None
        relation = Relation(self.schema, validate=False)
        relation._rows = set(self._ordered)
        self._result = XRelation(relation)
        self._ordered = []
        self._released = True
        return self._result

    # -- provenance ------------------------------------------------------------
    def step_lines(self) -> List[str]:
        """The logical step trace, annotated with live actual row counts."""
        return [step.render() for step in self.trace]

    def explain(self, analyze: bool = False) -> str:
        """The physical tree; ``analyze=True`` drains it first and adds
        per-node actual rows and wall time."""
        if analyze:
            self.run()
        return render_tree(self.root, analyze=analyze)

    def __repr__(self) -> str:
        state = "drained" if self._exhausted else "pending"
        return f"Pipeline({self.root.label!r}, {state}, rows={len(self._ordered)})"
