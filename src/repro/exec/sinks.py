"""DML sinks: pipeline endpoints that apply mutations atomically.

A sink is the root of a DML statement's physical plan: it drains its
source pipeline (the matching-rows query compiled by the planner) and
applies the batch through the storage layer's *atomic* bulk entry points
— :meth:`Database.insert_many` for APPEND, :meth:`Database.delete_many`
for DELETE (with the (4.8) subsumption closure and FK restrict), and the
deletion-followed-by-addition discipline with post-state FK re-check and
wholesale rollback for REPLACE.  Sinks are blocking by nature: atomicity
demands the complete batch before anything is applied, so they are the
one place a DML pipeline legitimately materialises.

Each sink is a :class:`~repro.exec.operators.PhysicalOperator`, so
``explain(analyze=True)`` renders the full tree — sink on top, the
streaming source plan underneath — with per-node actual rows and time.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, List, Optional, Sequence

from ..core.tuples import XTuple
from .operators import PhysicalOperator
from .pipeline import Pipeline


class Sink(PhysicalOperator):
    """Base class: drain a source pipeline, apply a mutation, count rows."""

    def __init__(self, database, table, source: Optional[Pipeline], **kwargs: Any):
        children = (source.root,) if source is not None else ()
        super().__init__(children, **kwargs)
        self.database = database
        self.table = table
        self.source = source
        self.rows_affected = 0

    def _matching_rows(self) -> List[XTuple]:
        """The source's *canonical* (minimal) answer rows — the batch a
        sink applies must not depend on which representation the
        streaming plan happened to produce."""
        if self.source is None:
            return []
        return list(self.source.run().rows())

    def _apply(self, matched: List[XTuple]) -> int:
        raise NotImplementedError

    def run(self) -> int:
        """Drain the source and apply the mutation; rows affected."""
        self.started = True
        begin = perf_counter()
        try:
            matched = self._matching_rows()
            self.rows_affected = self._apply(matched)
            self.actual_rows = self.rows_affected
            return self.rows_affected
        finally:
            self.seconds += perf_counter() - begin
            self.finished = True

    def _blocks(self):
        # Sinks terminate the pipeline: they produce no tuples.  Running
        # one through the block protocol applies the mutation (once) and
        # yields nothing.
        if not self.finished:
            self.run()
        return iter(())


class AppendSink(Sink):
    """APPEND TO: build the new rows and apply one atomic ``insert_many``.

    *row_builder* maps each source binding row to the row to insert (or
    ``None`` to skip); for range-less appends the literal rows are passed
    directly and there is no source to drain.
    """

    def __init__(
        self,
        database,
        table,
        source: Optional[Pipeline] = None,
        row_builder: Optional[Callable[[XTuple], Optional[XTuple]]] = None,
        literal_rows: Sequence[XTuple] = (),
        **kwargs: Any,
    ):
        kwargs.setdefault("label", f"AppendSink {table.name} (atomic insert_many)")
        super().__init__(database, table, source, **kwargs)
        self.row_builder = row_builder
        self.literal_rows = list(literal_rows)

    def _apply(self, matched: List[XTuple]) -> int:
        if self.source is None:
            rows = list(self.literal_rows)
        else:
            built = (self.row_builder(row) for row in matched)
            rows = list(dict.fromkeys(r for r in built if r is not None))
        if not rows:
            return 0
        self.database.insert_many(self.table.name, rows)
        return len(rows)


class DeleteSink(Sink):
    """DELETE: matching rows → one atomic ``delete_many``.

    Per Section 7 deletion is generalised difference: every matching row
    also removes the stored rows it subsumes ((4.8)), foreign keys
    restrict, and the whole batch applies all-or-nothing.
    """

    def __init__(self, database, table, source: Pipeline, **kwargs: Any):
        kwargs.setdefault(
            "label", f"DeleteSink {table.name} (atomic delete_many, 4.8 closure)"
        )
        super().__init__(database, table, source, **kwargs)

    def _apply(self, matched: List[XTuple]) -> int:
        if not matched:
            return 0
        return self.database.delete_many(self.table.name, matched)


class ReplaceSink(Sink):
    """REPLACE: deletion followed by addition, with wholesale rollback.

    *row_builder* maps each matched row to its replacement.  The batch
    delegates to :meth:`Database.update_many` — bulk (4.8) delete of the
    matched rows, atomic checked bulk insert of the replacements, both
    foreign-key directions re-checked against the *post* state (the new
    rows may legitimately re-satisfy keys the deletion removed), and any
    failure restores the table's pre-statement rows — so the modification
    discipline of Section 7 lives in exactly one place.
    """

    def __init__(
        self,
        database,
        table,
        source: Pipeline,
        row_builder: Callable[[XTuple], XTuple],
        **kwargs: Any,
    ):
        kwargs.setdefault(
            "label", f"ReplaceSink {table.name} (delete_many + insert_many)"
        )
        super().__init__(database, table, source, **kwargs)
        self.row_builder = row_builder

    def _apply(self, matched: List[XTuple]) -> int:
        if not matched:
            return 0
        self.database.update_many(
            self.table.name,
            [(old, self.row_builder(old)) for old in matched],
        )
        return len(matched)
