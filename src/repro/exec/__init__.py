"""The streaming operator-tree executor (Volcano-style, batch-at-a-time).

This subpackage decouples *execution* from *planning*: the QUEL planner
(:mod:`repro.quel.planner`) compiles its logical plan into a tree of the
physical operators defined here, and the tree pulls fixed-size blocks of
tuples from leaf to root — non-blocking operators stream rows through
without ever constructing an intermediate
:class:`~repro.core.xrelation.XRelation`, while the blocking ones
(:class:`Reduce`, :class:`Materialize`, the join build sides, the DML
sinks) break the pipeline exactly where the semantics require it.

Every operator records its actual row count and wall time while the tree
drains, so ``ResultSet.explain(analyze=True)`` turns the optimizer's
``est=`` annotations into a measurable per-node audit.

The exported surface:

* operators — :class:`TableScan`, :class:`IndexProbe`, :class:`Filter`,
  :class:`Rename`, :class:`Project`, :class:`HashJoin`,
  :class:`IndexNLJoin`, :class:`Product`, :class:`Reduce`,
  :class:`Materialize`;
* DML sinks — :class:`AppendSink`, :class:`DeleteSink`,
  :class:`ReplaceSink`;
* :class:`Pipeline` / :class:`TraceStep` / :class:`StalenessGuard` /
  :func:`render_tree` — the compiled-tree wrapper, the shared step-trace
  rendering, the execute-time stamp that makes an undrained live-index
  probe fail loudly after a mutation, and the ``EXPLAIN (ANALYZE)`` tree
  formatter;
* :class:`Exchange` / :class:`Merge` / :class:`PlanFragment` — the
  parallel partitioned execution layer: a picklable per-partition plan
  recipe, the operator that fans it out over worker processes, and the
  blocking merge that reduces the shard frontier back to global minimal
  form (``Plan.compile(parallelism=N)``).
"""

from .exchange import Exchange, Merge, PlanFragment, partition_rows_by_key
from .operators import (
    BLOCK_SIZE,
    Filter,
    HashJoin,
    IndexNLJoin,
    IndexProbe,
    Materialize,
    PhysicalOperator,
    Product,
    Project,
    Reduce,
    Rename,
    TableScan,
)
from .pipeline import Pipeline, StalenessGuard, TraceStep, render_tree
from .sinks import AppendSink, DeleteSink, ReplaceSink, Sink

__all__ = [
    "BLOCK_SIZE",
    "AppendSink",
    "DeleteSink",
    "Exchange",
    "Filter",
    "HashJoin",
    "IndexNLJoin",
    "IndexProbe",
    "Materialize",
    "Merge",
    "PhysicalOperator",
    "Pipeline",
    "PlanFragment",
    "Product",
    "Project",
    "Reduce",
    "Rename",
    "ReplaceSink",
    "Sink",
    "StalenessGuard",
    "TableScan",
    "TraceStep",
    "partition_rows_by_key",
    "render_tree",
]
