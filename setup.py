"""Setup shim for environments whose pip/setuptools cannot build editable
installs through PEP 517 (no `wheel` available offline).  All real metadata
lives in pyproject.toml."""
from setuptools import setup, find_packages

setup(
    name="repro-null-relations",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
