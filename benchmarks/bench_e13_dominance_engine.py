"""E13 — the dominance engine against the seed implementations.

The engine PR claims that routing minimal-form reduction, subsumption,
difference and x-intersection through the signature-partitioned
dominance engine (:mod:`repro.core.engine`) beats the seed code paths by
≥ 5× on a 10k-row, 6-attribute, 30%-null synthetic relation.  This
benchmark measures exactly that, on relations from :mod:`repro.datagen`,
and records machine-readable metrics for ``benchmarks/results.json``.

Baselines are the *seed* implementations, reproduced verbatim:

* ``minimal()`` — the retired ``reduce_rows_hashed`` that indexed every
  attribute subset of every row (``2^k`` index entries per row), which
  the seed dispatcher chose above 64 rows, plus the textbook O(n²)
  ``reduce_rows_naive`` oracle for reference;
* ``difference`` — the nested ``|R1|·|R2|`` dominance scan, preserved as
  :func:`repro.core.setops.difference_naive`;
* ``x_intersection`` — the full ``|R1|·|R2|`` meet product, preserved as
  :func:`repro.core.setops.x_intersection_naive` (the benchmark baseline
  accumulates meets into a set — the seed's list would not fit in memory
  at 10k×10k — so the recorded baseline is *conservative*);
* ``subsumes`` — the per-row linear scans the seed relation layer used.

Run styles:

* under pytest (quick sizes, used by CI as a smoke test):
  ``PYTHONPATH=src python -m pytest benchmarks/bench_e13_dominance_engine.py -q``
* standalone (full sweep n ∈ {100, 1 000, 10 000}, writes results.json):
  ``PYTHONPATH=src python benchmarks/bench_e13_dominance_engine.py``
  (pass ``--quick`` for the small sweep).
"""

from __future__ import annotations

import os
import sys
import time
from itertools import combinations
from typing import Callable, Dict, List, Tuple

from repro.core.engine import bulk_reduce
from repro.core.minimal import reduce_rows_naive
from repro.core.relation import Relation
from repro.core.setops import (
    difference,
    difference_naive,
    x_intersection,
    x_intersection_naive,
)
from repro.datagen import random_partial_relation

ATTRIBUTES = ("A", "B", "C", "D", "E", "F")
DOMAIN_SIZE = 64
NULL_RATE = 0.3
FULL_SIZES = (100, 1_000, 10_000)
QUICK_SIZES = (100, 400)
#: Above this size the quadratic baselines run once instead of best-of-3.
SINGLE_SHOT_THRESHOLD = 2_000


def make_relation(rows: int, seed: int, name: str = "R") -> Relation:
    return random_partial_relation(
        ATTRIBUTES, DOMAIN_SIZE, rows, NULL_RATE, seed=seed, name=name
    )


# ---------------------------------------------------------------------------
# Seed baselines (verbatim reproductions of the pre-engine code paths)
# ---------------------------------------------------------------------------

def seed_subset_reduce(rows) -> List:
    """The retired ``reduce_rows_hashed``: index all attribute subsets."""
    unique = list(set(rows))
    projection_index: Dict[Tuple, set] = {}
    for t in unique:
        items = t.items()
        n = len(items)
        for width in range(n + 1):
            for combo in combinations(items, width):
                projection_index.setdefault(combo, set()).add(t)
    result = []
    for candidate in unique:
        if candidate.is_null_tuple():
            continue
        holders = projection_index.get(candidate.items(), set())
        if not any(other != candidate for other in holders):
            result.append(candidate)
    return result


def seed_minimal(relation: Relation) -> List:
    """The seed ``Relation.minimal()`` strategy dispatch (naive ≤ 64 rows)."""
    rows = relation.tuples()
    if len(rows) > 64:
        return seed_subset_reduce(rows)
    return reduce_rows_naive(rows)


def seed_subsumes(r1: Relation, r2: Relation) -> bool:
    """The seed ``Relation.subsumes``: a linear scan per probed row."""
    rows1 = r1.tuples()
    for t in r2.tuples():
        if t.is_null_tuple():
            continue
        if not any(r.more_informative_than(t) for r in rows1):
            return False
    return True


# ---------------------------------------------------------------------------
# Measurement harness
# ---------------------------------------------------------------------------

def _time(fn: Callable[[], object], single_shot: bool) -> Tuple[float, object]:
    """Wall time of *fn* — best of three, or one shot for slow baselines."""
    best = float("inf")
    value = None
    for _ in range(1 if single_shot else 3):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_experiments(sizes=FULL_SIZES, metric=None, line=None):
    """Measure every op at every size, asserting engine/seed agreement.

    *metric* / *line* are ``ExperimentRecorder``-style callbacks; pass
    ``None`` to just run the agreement checks.
    """

    def emit(op, variant, rows, seconds, **extra):
        if metric is not None:
            metric(
                op, seconds, variant=variant, rows=rows,
                attributes=len(ATTRIBUTES), null_rate=NULL_RATE,
                domain_size=DOMAIN_SIZE, **extra,
            )

    for size in sizes:
        single_shot = size > SINGLE_SHOT_THRESHOLD
        left = make_relation(size, seed=size, name="L")
        right = make_relation(size, seed=size + 1, name="R")

        # -- minimal form ---------------------------------------------------
        seed_seconds, seed_rows = _time(lambda: seed_minimal(left), single_shot)
        engine_seconds, engine_rel = _time(lambda: left.minimal(), False)
        assert set(engine_rel.tuples()) == set(seed_rows)
        emit("minimal", "seed", size, seed_seconds)
        emit("minimal", "engine", size, engine_seconds,
             speedup=round(seed_seconds / engine_seconds, 2))
        naive_seconds, naive_rows = _time(
            lambda: reduce_rows_naive(left.tuples()), True
        )
        assert set(naive_rows) == set(seed_rows)
        emit("minimal", "naive-oracle", size, naive_seconds)

        # -- difference -----------------------------------------------------
        seed_seconds, seed_rel = _time(
            lambda: difference_naive(left, right, minimize=False), single_shot
        )
        engine_seconds, engine_rel = _time(
            lambda: difference(left, right, minimize=False), False
        )
        assert engine_rel.tuples() == seed_rel.tuples()
        emit("difference", "seed", size, seed_seconds)
        emit("difference", "engine", size, engine_seconds,
             speedup=round(seed_seconds / engine_seconds, 2))

        # -- x-intersection -------------------------------------------------
        seed_seconds, seed_rel = _time(
            lambda: x_intersection_naive(left, right), single_shot
        )
        engine_seconds, engine_rel = _time(
            lambda: x_intersection(left, right), False
        )
        assert engine_rel.tuples() == seed_rel.tuples()
        emit("x_intersection", "seed", size, seed_seconds)
        emit("x_intersection", "engine", size, engine_seconds,
             speedup=round(seed_seconds / engine_seconds, 2))

        # -- subsumption ----------------------------------------------------
        pooled = Relation(left.schema, validate=False)
        pooled._rows = set(left.tuples()) | set(right.tuples())
        seed_seconds, seed_verdict = _time(
            lambda: seed_subsumes(pooled, left), single_shot
        )
        engine_seconds, engine_verdict = _time(
            lambda: pooled.copy().subsumes(left), False
        )
        assert engine_verdict == seed_verdict is True
        emit("subsumes", "seed", size, seed_seconds)
        emit("subsumes", "engine", size, engine_seconds,
             speedup=round(seed_seconds / engine_seconds, 2))

        if line is not None:
            line(f"n={size}: engine vs seed agree on every op (metrics in results.json)")


# ---------------------------------------------------------------------------
# pytest entry points (quick smoke + agreement assertions)
# ---------------------------------------------------------------------------

def test_engine_vs_seed_quick(record):
    """Quick-mode sweep: asserts engine/seed agreement, records metrics."""
    run_experiments(sizes=QUICK_SIZES, metric=record.metric, line=record.line)


# ---------------------------------------------------------------------------
# Standalone entry point (full sweep, writes benchmarks/results.json)
# ---------------------------------------------------------------------------

def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    sizes = QUICK_SIZES if quick else FULL_SIZES

    here = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, here)
    import conftest  # the benchmark harness recorder/writer

    recorder = conftest.ExperimentRecorder("e13_dominance_engine")
    run_experiments(sizes=sizes, metric=recorder.metric, line=recorder.line)

    results_path = os.path.join(here, "results.json")
    conftest.write_results_json(results_path)

    metrics = conftest._METRICS["e13_dominance_engine"]
    by_key = {(m["op"], m["variant"], m["rows"]): m for m in metrics}
    print(f"{'op':<16} {'rows':>6} {'seed s':>10} {'engine s':>10} {'speedup':>8}")
    for op in ("minimal", "difference", "x_intersection", "subsumes"):
        for size in sizes:
            seed = by_key.get((op, "seed", size))
            engine = by_key.get((op, "engine", size))
            if seed and engine:
                print(
                    f"{op:<16} {size:>6} {seed['seconds']:>10.4f} "
                    f"{engine['seconds']:>10.4f} "
                    f"{seed['seconds'] / engine['seconds']:>7.1f}x"
                )
    print(f"\nwrote {results_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
