"""E5 — Figure 2 (query Q_B): schema-constraint tautologies.

Paper claims reproduced:

* the ni lower bound of Q_B is computable with plain three-valued
  evaluation (no constraint reasoning);
* under the "unknown" interpretation, bindings whose last two conjuncts
  touch nulls define tautologies *only* given the schema constraints
  ("an employee cannot manage himself / his own manager"); without the
  declared constraints the detector cannot include them, with them it can
  — the Appendix's point about constraint understanding, made executable.

Timed: Q_B evaluation via both strategies, and the unknown-interpretation
evaluation with and without declared constraints.
"""

import pytest

from repro import NI, XTuple
from repro.constraints import BindingConstraint, as_detector_constraints
from repro.datagen import FIGURE_2_QUERY, employee_database, scaled_employee_database
from repro.quel import compile_query, run_query
from repro.tautology import TautologyDetector, evaluate_unknown_lower_bound


def _manager_constraints():
    """The Figure 2 semantic constraints, as binding constraints."""
    def no_self_management(binding):
        for row in binding.values():
            if row["MGR#"] is not NI and row["E#"] is not NI and row["MGR#"] == row["E#"]:
                return False
        return True

    def no_mutual_management(binding):
        e, m = binding.get("e"), binding.get("m")
        if e is None or m is None:
            return True
        if e["MGR#"] is NI or m["E#"] is NI or e["E#"] is NI or m["MGR#"] is NI:
            return True
        if e["MGR#"] == m["E#"] and m["MGR#"] == e["E#"]:
            return False
        return True

    return as_detector_constraints([
        BindingConstraint(["e"], no_self_management),
        BindingConstraint(["e", "m"], no_mutual_management),
    ])


class TestPaperRows:
    def test_ni_lower_bound(self, emp_db, record, benchmark):
        benchmark.group = "E5 paper rows"
        result = benchmark(lambda: run_query(FIGURE_2_QUERY, emp_db))
        names = sorted({t["e_NAME"] for t in result.rows})
        record.line(f"||Q_B||* under ni interpretation: {names}")
        assert names == ["GREEN"]

    def test_strategies_agree(self, emp_db, record, benchmark):
        benchmark.group = "E5 paper rows"
        algebra = benchmark(lambda: run_query(FIGURE_2_QUERY, emp_db, strategy="algebra"))
        assert algebra.answer == run_query(FIGURE_2_QUERY, emp_db, strategy="tuple").answer
        record.line("tuple-at-a-time and algebraic plans agree on Q_B")

    def test_constraint_knowledge_changes_the_unknown_answer(self, record, benchmark):
        """A database where GREEN's manager row has a null MGR#.

        The binding (GREEN, ADAMS) then hinges on ``e.E# ≠ m.MGR#`` with a
        null m.MGR#: not a tautology propositionally or arithmetically, but
        a tautology under the no-mutual-management schema constraint.
        """
        benchmark.group = "E5 paper rows"
        db = employee_database()
        table = db.table("EMP")
        adams = table.lookup(["E#"], [1255])[0]
        table.update(adams, {**adams.as_dict(), "MGR#": None})
        analyzed = compile_query(FIGURE_2_QUERY, db)

        unaware = TautologyDetector(domains={"MGR#": [1120, 4335, 8799, 2235, 1255]})
        aware = TautologyDetector(
            domains={"MGR#": [1120, 4335, 8799, 2235, 1255]},
            constraints=_manager_constraints(),
        )
        without = evaluate_unknown_lower_bound(analyzed.query, unaware)
        with_constraints = benchmark(
            lambda: evaluate_unknown_lower_bound(analyzed.query, aware)
        )
        names_without = sorted({t["e_NAME"] for t in without.rows()})
        names_with = sorted({t["e_NAME"] for t in with_constraints.rows()})
        record.line(f"unknown interpretation, constraint-unaware: {names_without}")
        record.line(f"unknown interpretation, constraint-aware:   {names_with}")
        assert "GREEN" not in names_without
        assert "GREEN" in names_with


class TestCost:
    @pytest.mark.parametrize("size", [10, 20, 40])
    def test_self_join_cost_tuple_strategy(self, benchmark, size):
        db = scaled_employee_database(size, null_rate=0.3, seed=2)
        benchmark.group = "E5 Q_B cost"
        benchmark.name = f"tuple-strategy rows={size}"
        benchmark(lambda: run_query(FIGURE_2_QUERY, db, strategy="tuple"))

    @pytest.mark.parametrize("size", [10, 20, 40])
    def test_self_join_cost_algebra_strategy(self, benchmark, size):
        db = scaled_employee_database(size, null_rate=0.3, seed=2)
        benchmark.group = "E5 Q_B cost"
        benchmark.name = f"algebra-strategy rows={size}"
        benchmark(lambda: run_query(FIGURE_2_QUERY, db, strategy="algebra"))

    @pytest.mark.parametrize("size", [6, 10])
    def test_constraint_aware_unknown_evaluation_cost(self, benchmark, size):
        db = scaled_employee_database(size, null_rate=0.3, seed=2)
        analyzed = compile_query(FIGURE_2_QUERY, db)
        employee_numbers = [row["E#"] for row in db["EMP"].tuples()]
        detector = TautologyDetector(
            domains={"MGR#": employee_numbers, "E#": employee_numbers},
            constraints=_manager_constraints(),
        )
        benchmark.group = "E5 Q_B cost"
        benchmark.name = f"unknown-with-constraints rows={size}"
        benchmark(lambda: evaluate_unknown_lower_bound(analyzed.query, detector))
