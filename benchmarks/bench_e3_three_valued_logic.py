"""E3 — Table III: the three-valued truth tables and comparison semantics.

Regenerates the AND/OR/NOT tables exactly as printed, side by side with
Codd's MAYBE-labelled tables (identical tables, different reading), and
times truth-table evaluation and null-aware comparisons.
"""

import pytest

from repro.codd import CODD_TRUTH_VALUES, codd_compare, from_core_truth
from repro.core.threevalued import FALSE, NI_TRUTH, TRUE, TRUTH_VALUES, compare


def _format_table(operation, values, combine):
    header = f"{operation:>6s} | " + " ".join(f"{v!r:>6}" for v in values)
    rows = []
    for left in values:
        cells = " ".join(f"{combine(left, right)!r:>6}" for right in values)
        rows.append(f"{left!r:>6} | {cells}")
    return [header] + rows


class TestPaperRows:
    def test_truth_tables_match_table_iii(self, record, benchmark):
        benchmark.group = "E3 paper rows"
        benchmark(lambda: [(a & b, a | b, ~a) for a in TRUTH_VALUES for b in TRUTH_VALUES])
        record.table("AND (Table III):", _format_table("AND", TRUTH_VALUES, lambda a, b: a & b))
        record.table("OR (Table III):", _format_table("OR", TRUTH_VALUES, lambda a, b: a | b))
        record.table("NOT (Table III):", [f"{v!r:>6} → {(~v)!r}" for v in TRUTH_VALUES])
        # Spot-check the cells the paper's evaluation discipline depends on.
        assert (TRUE & NI_TRUTH) == NI_TRUTH
        assert (FALSE & NI_TRUTH) == FALSE
        assert (TRUE | NI_TRUTH) == TRUE
        assert (FALSE | NI_TRUTH) == NI_TRUTH
        assert (~NI_TRUTH) == NI_TRUTH

    def test_codd_tables_coincide_with_ni_tables(self, record, benchmark):
        """Same truth tables, different interpretation of the third value."""
        benchmark.group = "E3 paper rows"
        for a in CODD_TRUTH_VALUES:
            for b in CODD_TRUTH_VALUES:
                core_a, core_b = _to_core(a), _to_core(b)
                assert _to_core(a & b) == (core_a & core_b)
                assert _to_core(a | b) == (core_a | core_b)
            assert _to_core(~a) == ~_to_core(a)
        benchmark(lambda: [(a & b) for a in CODD_TRUTH_VALUES for b in CODD_TRUTH_VALUES])
        record.line("Codd's TRUE/MAYBE/FALSE tables coincide cell-by-cell with Table III")

    def test_null_comparisons_yield_ni(self, record, benchmark):
        benchmark.group = "E3 paper rows"
        verdict = benchmark(lambda: compare(None, ">", 2634000))
        record.line(f"ni > 2634000 → {verdict!r} (discarded by the lower bound)")
        record.line(f"ω > 2634000 → {codd_compare(None, '>', 2634000)!r} under Codd (MAYBE)")
        assert verdict == NI_TRUTH


def _to_core(codd_value):
    from repro.codd import to_core_truth
    return to_core_truth(codd_value)


class TestCost:
    def test_connective_throughput(self, benchmark):
        values = TRUTH_VALUES * 100
        benchmark.group = "E3 logic cost"
        benchmark.name = "fold-and-or-over-300-values"

        def fold():
            conjunction = TRUE
            disjunction = FALSE
            for value in values:
                conjunction = conjunction & value
                disjunction = disjunction | value
            return conjunction, disjunction

        benchmark(fold)

    @pytest.mark.parametrize("null_fraction", [0.0, 0.5])
    def test_comparison_throughput(self, benchmark, null_fraction):
        operands = [
            (None if (i % 10) < null_fraction * 10 else i, "<", i + 1)
            for i in range(500)
        ]
        benchmark.group = "E3 logic cost"
        benchmark.name = f"compare-500-pairs null={null_fraction}"
        benchmark(lambda: [compare(a, op, b) for a, op, b in operands])
