"""E11 — The Appendix: what correct "unknown"-interpretation evaluation costs.

Three analysis strategies are timed on the same instances:

* truth-table tautology checking (2^n in the number of null comparisons),
* DPLL tautology checking (fast on easy instances, exponential worst case),
* brute-force domain substitution (|D|^k in the number of null sites),

and contrasted with the ni evaluation, which does not run any of them.
The instance families mirror the Appendix's escalation: a propositional
tautology, the inequality example ``t.A > 3 ∧ (t.B < 12 ∨ t.B > t.A)``,
and the Figure 2 constraint-dependent case.
"""

import pytest

from repro import XTuple
from repro.core.query import And, AttributeRef, Comparison, Constant, Not, Or
from repro.tautology import (
    TautologyDetector,
    abstract_predicate,
    is_tautology,
    truth_table_tautology,
)


def _disjunctive_tautology(width):
    """(p0 ∨ ¬p0) ∧ ... over `width` distinct null comparisons."""
    clauses = []
    for i in range(width):
        atom = Comparison(AttributeRef("t", f"A{i}"), ">", Constant(i))
        clauses.append(Or(atom, Not(atom)))
    return And(*clauses)


def _binding(width):
    return {"t": XTuple()}  # every A_i is null


class TestPaperRows:
    def test_three_layers_agree_on_the_appendix_examples(self, record, benchmark):
        benchmark.group = "E11 paper rows"
        detector = TautologyDetector(domains={"B": list(range(0, 20))})

        propositional_case = _disjunctive_tautology(3)
        inequality_case = And(
            Comparison(AttributeRef("t", "A"), ">", Constant(3)),
            Or(
                Comparison(AttributeRef("t", "B"), "<", Constant(12)),
                Comparison(AttributeRef("t", "B"), ">", AttributeRef("t", "A")),
            ),
        )
        verdict_prop = detector.detect(propositional_case, {"t": XTuple()})
        verdict_ineq = benchmark(lambda: detector.detect(inequality_case, {"t": XTuple(A=7)}))
        verdict_ineq_out = detector.detect(inequality_case, {"t": XTuple(A=20)})
        record.table(
            "Appendix instances:",
            [
                f"propositional (p∨¬p)^3         → {verdict_prop.is_tautology} via {verdict_prop.method}",
                f"A>3 ∧ (B<12 ∨ B>A), A=7 (null B) → {verdict_ineq.is_tautology} via {verdict_ineq.method}",
                f"same clause with A=20           → {verdict_ineq_out.is_tautology} via {verdict_ineq_out.method}",
            ],
        )
        assert verdict_prop.is_tautology and verdict_prop.method == "propositional"
        assert verdict_ineq.is_tautology and verdict_ineq.method == "interval"
        assert verdict_ineq_out.is_tautology is False

    def test_ni_interpretation_skips_all_of_this(self, record, benchmark):
        benchmark.group = "E11 paper rows"
        from repro.core.threevalued import NI_TRUTH
        predicate = _disjunctive_tautology(3)
        verdict = benchmark(lambda: predicate.evaluate({"t": XTuple()}))
        record.line(
            f"ni evaluation of the same clause: {verdict!r} — the tuple is simply "
            "discarded from the lower bound, no analysis needed"
        )
        assert verdict == NI_TRUTH


class TestCost:
    @pytest.mark.parametrize("width", [4, 8, 12])
    def test_truth_table_cost(self, benchmark, width):
        predicate = _disjunctive_tautology(width)
        abstraction = abstract_predicate(predicate, _binding(width))
        benchmark.group = "E11 tautology cost"
        benchmark.name = f"truth-table atoms={width}"
        result = benchmark(lambda: truth_table_tautology(abstraction.formula))
        assert result

    @pytest.mark.parametrize("width", [4, 8, 12, 14])
    def test_dpll_cost(self, benchmark, width):
        # Note: the naive CNF distribution used before DPLL is itself
        # exponential on this clause shape, so the width is kept moderate;
        # the growth from 4 to 16 atoms already exhibits the blow-up.
        predicate = _disjunctive_tautology(width)
        abstraction = abstract_predicate(predicate, _binding(width))
        benchmark.group = "E11 tautology cost"
        benchmark.name = f"dpll atoms={width}"
        result = benchmark(lambda: is_tautology(abstraction.formula))
        assert result

    @pytest.mark.parametrize("domain_size,sites", [(4, 2), (8, 3), (16, 3)])
    def test_brute_force_cost(self, benchmark, domain_size, sites):
        attributes = [f"A{i}" for i in range(sites)]
        predicate = And(*[
            Or(
                Comparison(AttributeRef("t", a), "<", Constant(domain_size)),
                Comparison(AttributeRef("t", a), ">=", Constant(domain_size)),
            )
            for a in attributes
        ])
        detector = TautologyDetector(domains={a: list(range(domain_size)) for a in attributes})
        benchmark.group = "E11 tautology cost"
        benchmark.name = f"brute-force |D|={domain_size} sites={sites}"
        result = benchmark(lambda: detector.brute_force_check(predicate, {"t": XTuple()}))
        assert result.is_tautology

    @pytest.mark.parametrize("width", [4, 8, 12])
    def test_ni_evaluation_cost_for_reference(self, benchmark, width):
        predicate = _disjunctive_tautology(width)
        benchmark.group = "E11 tautology cost"
        benchmark.name = f"ni-evaluation atoms={width}"
        benchmark(lambda: predicate.evaluate({"t": XTuple()}))
