"""E2 — Tables I/II: schema evolution with ni nulls is information-preserving.

Reproduces the Section 2 claim (Table I ≅ Table II) and times the
equivalence check and the add-column operation as the relation grows.
"""

import pytest

from repro import XRelation
from repro.datagen import employee_relation
from repro.storage import Table, add_attribute


class TestPaperRows:
    def test_table_one_equivalent_to_table_two(self, emp_table_one, emp_table_two, record, benchmark):
        benchmark.group = "E2 paper rows"
        equivalent = benchmark(lambda: XRelation(emp_table_one) == XRelation(emp_table_two))
        record.line(f"Table I ≅ Table II: {equivalent}   (paper: information-wise equivalent)")
        assert equivalent

    def test_evolution_report(self, emp_table_one, record, benchmark):
        benchmark.group = "E2 paper rows"

        def evolve():
            table = Table(emp_table_one.schema, name="EMP")
            table.insert_many(list(emp_table_one.tuples()))
            return add_attribute(table, "TEL#")

        report = benchmark(evolve)
        record.line(str(report))
        assert report.information_preserved


class TestCost:
    @pytest.mark.parametrize("size", [10, 50, 250])
    def test_equivalence_check_cost(self, benchmark, size):
        original = employee_relation(size, null_rate=0.0, seed=1, name="EMP")
        widened = original.with_schema(original.schema.extend(["FAX#"]))
        benchmark.group = "E2 schema evolution"
        benchmark.name = f"equivalence-check rows={size}"
        result = benchmark(lambda: XRelation(original) == XRelation(widened))
        assert result

    @pytest.mark.parametrize("size", [10, 100, 500])
    def test_add_attribute_cost(self, benchmark, size):
        original = employee_relation(size, null_rate=0.2, seed=2, name="EMP")

        def evolve_once():
            table = Table(original.schema, name="EMP")
            table.relation._rows = set(original.tuples())
            return add_attribute(table, "FAX#")

        benchmark.group = "E2 schema evolution"
        benchmark.name = f"add-attribute rows={size}"
        report = benchmark(evolve_once)
        assert report.information_preserved
