"""E8 — Section 4/7 structural claims: the lattice of x-relations.

Verifies, on concrete universes, that

* the lattice laws and the distributive laws (4.4)/(4.5) hold,
* Propositions 4.6/4.7 hold for the difference,
* the Section 4 complement counter-example behaves as printed,
* pseudo-complements satisfy (7.1) and the Boolean sublattice has a
  different meet from the x-intersection (the two-meets phenomenon),

and times the law checks and the pseudo-complement construction as the
universe grows.
"""

import pytest

from repro import Relation, XRelation
from repro.core.lattice import (
    AttributeUniverse,
    check_difference_laws,
    check_distributivity,
    check_lattice_laws,
    complement_counterexample,
    pseudo_complement,
    set_intersection_of_totals,
    top,
)
from repro.datagen import random_partial_relation


def _triple(seed=0):
    a = XRelation(random_partial_relation(["A", "B"], 4, 12, 0.3, seed=seed, name="a"))
    b = XRelation(random_partial_relation(["A", "B"], 4, 12, 0.3, seed=seed + 1, name="b"))
    c = XRelation(random_partial_relation(["A", "B"], 4, 12, 0.3, seed=seed + 2, name="c"))
    return a, b, c


class TestPaperRows:
    def test_lattice_and_distributive_laws(self, record, benchmark):
        benchmark.group = "E8 paper rows"
        a, b, c = _triple()
        laws = benchmark(lambda: {**check_lattice_laws(a, b, c), **check_distributivity(a, b, c)})
        failed = [name for name, ok in laws.items() if not ok]
        record.line(f"lattice + distributivity laws checked: {len(laws)}, failed: {failed or 'none'}")
        assert not failed

    def test_difference_propositions(self, record, benchmark):
        benchmark.group = "E8 paper rows"
        a, b, _ = _triple(seed=5)
        u = a | b
        results = benchmark(lambda: check_difference_laws(u, b))
        record.line(f"Propositions 4.6/4.7 on a random pair: {results}")
        assert all(results.values())

    def test_complement_counterexample(self, record, benchmark):
        benchmark.group = "E8 paper rows"
        example = benchmark(complement_counterexample)
        record.table(
            "Section 4 counter-example (U = {A,B}, DOM(A)={a1}, DOM(B)={b1,b2}):",
            [
                f"R ∪ R* = TOP_U          : {example['union_is_top']}   (paper: yes)",
                f"R ∩̂ R* empty            : {example['intersection_empty']}   (paper: no — (a1,-) belongs to both)",
            ],
        )
        assert example["union_is_top"] and not example["intersection_empty"]

    def test_two_meets_differ(self, record, benchmark):
        benchmark.group = "E8 paper rows"
        universe = AttributeUniverse.from_values({"A": ["a1"], "B": ["b1", "b2"]})
        r1 = XRelation.from_rows(["A", "B"], [("a1", "b1")], name="R1")
        r2 = XRelation.from_rows(["A", "B"], [("a1", "b2")], name="R2")
        boolean_meet = set_intersection_of_totals(r1, r2, universe)
        x_meet = benchmark(lambda: r1 & r2)
        record.line(
            "meet in the Boolean sublattice (set ∩) is empty: "
            f"{boolean_meet.is_empty()}; x-intersection is empty: {x_meet.is_empty()}"
        )
        assert boolean_meet.is_empty() and not x_meet.is_empty()

    def test_pseudo_complement_definition(self, record, benchmark):
        benchmark.group = "E8 paper rows"
        universe = AttributeUniverse.from_values({"A": ["a1", "a2"], "B": ["b1", "b2"]})
        r = XRelation.from_rows(["A", "B"], [("a1", "b1"), ("a2", None)], name="R")
        star = benchmark(lambda: pseudo_complement(r, universe))
        record.line(f"|R*| = {len(star)}; R ∪ R* = TOP_U: {(r | star) == top(universe)}")
        assert (r | star) == top(universe)


class TestCost:
    @pytest.mark.parametrize("domain_size", [2, 4, 6])
    def test_pseudo_complement_cost(self, benchmark, domain_size):
        universe = AttributeUniverse.from_values({
            "A": [f"a{i}" for i in range(domain_size)],
            "B": [f"b{i}" for i in range(domain_size)],
        })
        r = XRelation(random_partial_relation(
            ["A", "B"], domain_size, domain_size * 2, 0.3, seed=domain_size, name="R"
        ))
        benchmark.group = "E8 lattice cost"
        benchmark.name = f"pseudo-complement |TOP|={domain_size * domain_size}"
        benchmark(lambda: pseudo_complement(r, universe))

    @pytest.mark.parametrize("rows", [10, 40, 160])
    def test_law_check_cost(self, benchmark, rows):
        a = XRelation(random_partial_relation(["A", "B"], 6, rows, 0.3, seed=1, name="a"))
        b = XRelation(random_partial_relation(["A", "B"], 6, rows, 0.3, seed=2, name="b"))
        c = XRelation(random_partial_relation(["A", "B"], 6, rows, 0.3, seed=3, name="c"))
        benchmark.group = "E8 lattice cost"
        benchmark.name = f"distributivity-check rows={rows}"
        result = benchmark(lambda: check_distributivity(a, b, c))
        assert all(result.values())
