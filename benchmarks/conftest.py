"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module corresponds to one experiment id from DESIGN.md
(E1–E12) and does two things:

* re-derives the rows / verdicts the paper prints and asserts them, so the
  harness doubles as a reproduction check;
* times the relevant operation(s) with pytest-benchmark so the cost-shape
  claims (selectivity, exponential blow-ups, naive-vs-hashed set
  operations) are measured rather than asserted.

Run with::

    pytest benchmarks/ --benchmark-only

The ``record`` fixture collects per-experiment result lines; at the end of
the session they are printed and written to ``benchmarks/results.txt`` so
EXPERIMENTS.md can quote them.  Structured measurements registered through
:meth:`ExperimentRecorder.metric` are additionally written to
``benchmarks/results.json`` — machine-readable per-experiment op/s and
input sizes, the data the BENCH_*.json trajectory tracking consumes.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
from collections import defaultdict
from typing import Any, Dict, List

import pytest

from repro.datagen import (
    employee_database,
    parts_suppliers,
    parts_suppliers_database,
    ps_double_prime,
    ps_prime,
    table_one,
    table_two,
)

_RESULTS: Dict[str, List[str]] = defaultdict(list)
_METRICS: Dict[str, List[Dict[str, Any]]] = defaultdict(list)


class ExperimentRecorder:
    """Collects human-readable result lines for one experiment."""

    def __init__(self, experiment: str):
        self.experiment = experiment

    def line(self, text: str) -> None:
        _RESULTS[self.experiment].append(text)

    def table(self, header: str, rows) -> None:
        self.line(header)
        for row in rows:
            self.line(f"  {row}")

    def metric(self, op: str, seconds: float, **fields: Any) -> None:
        """Register one structured measurement for ``results.json``.

        *op* names the operation, *seconds* is the wall time of one run;
        arbitrary keyword fields (``rows``, ``variant``, ``null_rate``,
        ...) describe the input.  ``ops_per_second`` is derived.
        """
        entry: Dict[str, Any] = {"op": op, "seconds": seconds}
        if seconds > 0:
            entry["ops_per_second"] = 1.0 / seconds
        entry.update(fields)
        _METRICS[self.experiment].append(entry)


def machine_metadata() -> Dict[str, Any]:
    """What the numbers were measured *on* — recorded alongside them.

    Wall-clock results are meaningless without the machine: a 2×
    parallel speedup needs at least 2 cores, and an interpreter bump
    moves every baseline.  The comparison tooling
    (``benchmarks/compare.py``) keys strictly on the per-metric fields,
    so this document-level block never participates in a diff — it only
    explains one.
    """
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }


def write_results_json(path: str) -> None:
    """Write every experiment's lines and metrics as one JSON document.

    Experiments not touched by this run are preserved from the existing
    file, so a quick smoke of one benchmark cannot clobber another
    benchmark's committed full-sweep results.  The run's
    :func:`machine_metadata` is stamped at the document level.
    """
    experiments: Dict[str, Any] = {}
    try:
        with open(path) as handle:
            existing = json.load(handle)
        if isinstance(existing, dict) and isinstance(existing.get("experiments"), dict):
            experiments.update(existing["experiments"])
    except (OSError, ValueError):
        pass
    for experiment in sorted(set(_RESULTS) | set(_METRICS)):
        experiments[experiment] = {
            "lines": _RESULTS.get(experiment, []),
            "metrics": _METRICS.get(experiment, []),
        }
    document = {"experiments": experiments, "machine": machine_metadata()}
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture
def record(request) -> ExperimentRecorder:
    module = request.module.__name__
    experiment = module.split("bench_")[-1]
    return ExperimentRecorder(experiment)


def pytest_sessionfinish(session, exitstatus):
    if not _RESULTS and not _METRICS:
        return
    lines: List[str] = []
    for experiment in sorted(_RESULTS):
        lines.append("=" * 70)
        lines.append(f"Experiment {experiment}")
        lines.append("=" * 70)
        lines.extend(_RESULTS[experiment])
        lines.append("")
    output = "\n".join(lines)
    here = os.path.dirname(__file__)
    if _RESULTS:
        print()
        print(output)
        try:
            with open(os.path.join(here, "results.txt"), "w") as handle:
                handle.write(output)
        except OSError:
            pass
    try:
        write_results_json(os.path.join(here, "results.json"))
    except OSError:
        pass


# -- shared paper fixtures ---------------------------------------------------

@pytest.fixture
def ps1():
    return ps_prime()


@pytest.fixture
def ps2():
    return ps_double_prime()


@pytest.fixture
def ps():
    return parts_suppliers()


@pytest.fixture
def emp_table_one():
    return table_one()


@pytest.fixture
def emp_table_two():
    return table_two()


@pytest.fixture
def emp_db():
    return employee_database()


@pytest.fixture
def ps_db():
    return parts_suppliers_database()
