"""E22 — Optimizer v2: histograms, DP join enumeration, feedback, result cache.

Four workloads, each pinning one of the Optimizer v2 claims:

* **range_plan** — per-attribute equi-depth histograms turn range
  selectivity from the textbook 1/3 into a data-driven estimate: on a
  skewed two-range join the pre-ANALYZE plan starts from the wrong
  range (its range filter looks 1/3-selective but actually keeps ~1%);
  after ANALYZE the estimate tightens by >5x and the join order flips.
* **dp_vs_greedy_4way** — Selinger-style DP enumeration against the
  greedy enumerator on a 4-way chain with a trap: the smallest table's
  only join link explodes, so greedy (which must start from the
  min-estimate range) builds intermediates ~10x the answer while DP
  starts from the selective filtered range.  DP must win on wall time.
* **feedback_error** — the adaptive loop: without ANALYZE the theta
  constant underestimates a skewed range filter ~3x; executing through
  a Session folds actual/estimated ratios into the table's bounded
  correction factor, and the median relative estimate error across the
  query set strictly drops.
* **result_cache** — the semantic result cache: repeating a retrieve
  on an unchanged table answers from the cache (>=10x faster at 10k
  rows) with hit/miss/entry counters in the Prometheus rendering.

Every workload asserts answer agreement (cache-on == cache-off,
DP == greedy == pre-ANALYZE plan), so the benchmark doubles as a
differential check.

Run styles:

* under pytest (quick sizes, used by CI as a smoke test):
  ``PYTHONPATH=src python -m pytest benchmarks/bench_e22_optimizer_v2.py -q``
* standalone (full sweep, writes results.json):
  ``PYTHONPATH=src python benchmarks/bench_e22_optimizer_v2.py``
  (pass ``--quick`` for the small sweep).
"""

from __future__ import annotations

import os
import random
import statistics
import sys
import time
from typing import Callable, List, Tuple

from repro.api.session import Session
from repro.obs import MetricsRegistry, registry_for
from repro.quel.evaluator import compile_query
from repro.quel.planner import Plan
from repro.stats import DEFAULT_COST_MODEL
from repro.storage.database import Database

FULL_SIZES = (1_000, 10_000)
QUICK_SIZES = (200, 500)
#: Cache-hit repetitions per timed measurement.
REPEATS = 5

RANGE_QUERY = (
    "range of r is R range of s is S retrieve (r.RID, s.SID) "
    "where r.X < 10 and s.C = 1 and r.K = s.K"
)

TRAP_QUERY = (
    "range of a is A range of b is B range of g is BIG range of t is TRAP "
    "retrieve (a.U, t.W) "
    "where a.S = 1 and a.U = b.U and b.V = g.V and g.F = t.F"
)

#: Range filters over the skewed attribute (all keep far more than 1/3).
FEEDBACK_QUERIES = tuple(
    (
        f"range of s is SKEW range of d is DIM retrieve (s.Y, d.Z) "
        f"where s.X < {constant} and s.K = d.K",
        constant,
    )
    for constant in (60, 80, 100)
)

CACHE_QUERY = "range of t is T retrieve (t.A, t.B) where t.B != 3"


# ---------------------------------------------------------------------------
# Workload builders
# ---------------------------------------------------------------------------

def range_database(size: int, seed: int) -> Database:
    """R.X uniform over [0, 1000) — ``X < 10`` keeps ~1%, not 1/3;
    S.C = 1 holds on ~30% of rows but has 10 distinct values."""
    rng = random.Random(seed)
    database = Database("e22-range")
    r = database.create_table("R", ["X", "K", "RID"])
    s = database.create_table("S", ["K", "C", "SID"])
    r.insert_many(
        [(rng.randrange(1000), rng.randrange(50), i) for i in range(size)]
    )
    s.insert_many([
        (rng.randrange(50), 1 if rng.random() < 0.3 else 2 + rng.randrange(8), i)
        for i in range(size)
    ])
    return database


def trap_database(size: int, seed: int) -> Database:
    """A —U— B —V— BIG —F— TRAP: TRAP is the smallest range (so greedy
    must start there) but its only link, BIG.F, has 5 distinct values —
    the first greedy join explodes to ~2x BIG's selected share, while
    DP starts from the filtered A end and keeps every intermediate at
    answer size."""
    rng = random.Random(seed)
    database = Database("e22-trap")
    a = database.create_table("A", ["S", "U"])
    b = database.create_table("B", ["U", "V"])
    big = database.create_table("BIG", ["V", "F"])
    trap = database.create_table("TRAP", ["F", "W"])
    a.insert_many([(i % 10, i % 200) for i in range(200)])
    b.insert_many([(i % 200, i) for i in range(200)])
    big.insert_many(
        [(rng.randrange(200), rng.randrange(5)) for _ in range(size)]
    )
    trap.insert_many([(i % 5, i) for i in range(10)])
    database.analyze()
    return database


def skew_database(size: int, seed: int) -> Database:
    """SKEW.X: 95% of rows uniform in [0, 100), 5% long tail — every
    FEEDBACK_QUERIES filter keeps 55–95% of rows, ~2–3x the theta
    constant's guess.  Statistics are left un-ANALYZEd on purpose."""
    rng = random.Random(seed)
    database = Database("e22-skew")
    skew = database.create_table("SKEW", ["X", "Y", "K"])
    head = [(rng.randrange(100), i, i % 20) for i in range(int(size * 0.95))]
    tail = [
        (100 + rng.randrange(9000), size + i, i % 20)
        for i in range(size - len(head))
    ]
    skew.insert_many(head + tail)
    dim = database.create_table("DIM", ["K", "Z"])
    dim.insert_many([(k, k * 10) for k in range(20)])
    return database


def cache_database(size: int, seed: int) -> Database:
    database = Database("e22-cache", metrics=MetricsRegistry())
    table = database.create_table("T", ["A", "B"])
    table.insert_many([(i, i % 97) for i in range(size)])
    database.analyze()
    return database


# ---------------------------------------------------------------------------
# Measurement harness
# ---------------------------------------------------------------------------

def _time(fn: Callable[[], object], repeat: int = 3) -> Tuple[float, object]:
    """Wall time of *fn* — best of *repeat* runs."""
    best = float("inf")
    value = None
    for _ in range(repeat):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _join_steps(plan: Plan) -> List[str]:
    return [step for step in plan.steps if "join" in step]


def run_experiments(sizes=FULL_SIZES, metric=None, line=None):
    """Measure all four workloads at every size, asserting agreement."""

    def emit(op, variant, rows, seconds, **extra):
        if metric is not None:
            metric(op, seconds, variant=variant, rows=rows, **extra)

    for size in sizes:
        # -- (a) histogram-driven range selectivity → plan choice ------------
        database = range_database(size, seed=size)
        query = compile_query(RANGE_QUERY, database).query
        seed_seconds, seed_answer = _time(lambda: Plan(query, database).execute())
        before = Plan(query, database)
        before.execute()
        database.analyze()
        engine_seconds, engine_answer = _time(lambda: Plan(query, database).execute())
        after = Plan(query, database)
        after.execute()
        assert engine_answer == seed_answer
        # ANALYZE built histograms: the range estimate tightens >5x ...
        stats = database.catalog.table("R").statistics
        actual = sum(1 for row in database.catalog.table("R").rows()
                     if row.get("X", None) is not None and row["X"] < 10)
        theta_est = DEFAULT_COST_MODEL.estimate_selection(stats, "X", "<")
        hist_est = DEFAULT_COST_MODEL.estimate_selection(stats, "X", "<", value=10)
        assert abs(hist_est - actual) * 5 < abs(theta_est - actual)
        # ... and the join order actually flipped.
        assert _join_steps(before) != _join_steps(after)
        emit("range_plan", "seed", size, seed_seconds,
             estimate_error=round(abs(theta_est - actual) / max(actual, 1), 3))
        emit("range_plan", "engine", size, engine_seconds,
             estimate_error=round(abs(hist_est - actual) / max(actual, 1), 3))

        # -- (b) 4-way join: DP enumeration vs greedy -------------------------
        database = trap_database(size, seed=size + 1)
        query = compile_query(TRAP_QUERY, database).query
        greedy_seconds, greedy_answer = _time(
            lambda: Plan(query, database, join_enumeration="greedy").execute()
        )
        dp_seconds, dp_answer = _time(
            lambda: Plan(query, database, join_enumeration="dp").execute()
        )
        assert dp_answer == greedy_answer
        if size >= 1_000:
            # The trap is sized so DP's win is structural, not noise.
            assert dp_seconds < greedy_seconds, (
                f"DP ({dp_seconds:.4f}s) did not beat greedy "
                f"({greedy_seconds:.4f}s) at {size} rows"
            )
        emit("dp_vs_greedy_4way", "seed", size, greedy_seconds)
        emit("dp_vs_greedy_4way", "engine", size, dp_seconds,
             speedup=round(greedy_seconds / dp_seconds, 2))

        # -- (c) adaptive feedback shrinks the estimate error -----------------
        database = skew_database(size, seed=size + 2)
        session = Session(database, result_cache_size=0)
        stats = database.catalog.table("SKEW").statistics
        table_rows = list(database.catalog.table("SKEW").rows())

        def errors():
            out = []
            for text, constant in FEEDBACK_QUERIES:
                actual = sum(
                    1 for row in table_rows
                    if row.get("X", None) is not None and row["X"] < constant
                )
                estimated = DEFAULT_COST_MODEL.estimate_selection(
                    stats, "X", "<", value=constant
                ) * stats.correction
                out.append(abs(estimated - actual) / max(actual, 1))
            return out

        before_errors = errors()
        start = time.perf_counter()
        for _ in range(3):
            for text, _constant in FEEDBACK_QUERIES:
                session.execute(text).rows
            session.clear_statement_cache()  # re-plan under the corrections
        feedback_seconds = time.perf_counter() - start
        after_errors = errors()
        assert statistics.median(after_errors) < statistics.median(before_errors)
        emit("feedback_error", "seed", size, feedback_seconds,
             median_error=round(statistics.median(before_errors), 3))
        emit("feedback_error", "engine", size, feedback_seconds,
             median_error=round(statistics.median(after_errors), 3),
             correction=round(stats.correction, 3))

        # -- (d) semantic result cache ----------------------------------------
        database = cache_database(size, seed=size + 3)
        cached = Session(database)
        uncached = Session(database, result_cache_size=0)
        assert cached.execute(CACHE_QUERY).rows == uncached.execute(CACHE_QUERY).rows
        cached.execute(CACHE_QUERY).rows  # first hit pays the sort memo

        def run(session):
            return session.execute(CACHE_QUERY).rows

        miss_seconds, _ = _time(lambda: run(uncached), repeat=REPEATS)
        hit_seconds, _ = _time(lambda: run(cached), repeat=REPEATS)
        speedup = miss_seconds / hit_seconds
        if size >= 10_000:
            assert speedup >= 10.0, (
                f"cache hit speedup {speedup:.1f}x < 10x at {size} rows"
            )
        rendered = registry_for(database).render_prometheus()
        assert 'repro_result_cache_total{event="hit"}' in rendered
        assert 'repro_result_cache_total{event="miss"}' in rendered
        assert "repro_result_cache_entries" in rendered
        emit("result_cache", "seed", size, miss_seconds)
        emit("result_cache", "engine", size, hit_seconds,
             speedup=round(speedup, 2))

        if line is not None:
            line(
                f"n={size}: range-plan flip + {round(greedy_seconds / dp_seconds, 1)}x "
                f"DP-vs-greedy + feedback error "
                f"{round(statistics.median(before_errors), 2)}→"
                f"{round(statistics.median(after_errors), 2)} + "
                f"{round(speedup, 1)}x cache hits (metrics in results.json)"
            )


# ---------------------------------------------------------------------------
# pytest entry point (quick smoke + agreement assertions)
# ---------------------------------------------------------------------------

def test_optimizer_v2_quick(record):
    """Quick-mode sweep: asserts agreement + plan-quality claims."""
    run_experiments(sizes=QUICK_SIZES, metric=record.metric, line=record.line)


# ---------------------------------------------------------------------------
# Standalone entry point (full sweep, writes benchmarks/results.json)
# ---------------------------------------------------------------------------

def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    sizes = QUICK_SIZES if quick else FULL_SIZES

    here = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, here)
    import conftest  # the benchmark harness recorder/writer

    recorder = conftest.ExperimentRecorder("e22_optimizer_v2")
    run_experiments(sizes=sizes, metric=recorder.metric, line=recorder.line)

    results_path = os.path.join(here, "results.json")
    conftest.write_results_json(results_path)

    metrics = conftest._METRICS["e22_optimizer_v2"]
    by_key = {(m["op"], m["variant"], m["rows"]): m for m in metrics}
    print(f"{'op':<22} {'rows':>6} {'seed s':>10} {'engine s':>10} {'speedup':>8}")
    for op in ("range_plan", "dp_vs_greedy_4way", "feedback_error", "result_cache"):
        for size in sizes:
            seed = by_key.get((op, "seed", size))
            engine = by_key.get((op, "engine", size))
            if seed and engine:
                ratio = (
                    seed["seconds"] / engine["seconds"]
                    if engine["seconds"] > 0 else float("inf")
                )
                print(
                    f"{op:<22} {size:>6} {seed['seconds']:>10.4f} "
                    f"{engine['seconds']:>10.4f} {ratio:>7.1f}x"
                )
    print(f"\nwrote {results_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
