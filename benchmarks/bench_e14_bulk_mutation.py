"""E14 — bulk mutation and composite-key joins against the seed paths.

The bulk-mutation PR claims two speedups:

* **bulk load** — :meth:`Table.insert_many` stages, checks and applies a
  whole batch at once (one :meth:`DominanceIndex.bulk_add` /
  :meth:`HashIndex.bulk_add` per structure, constraints checked with one
  indexed pass) instead of the seed's row-at-a-time loop of
  :meth:`Table.insert`, whose per-row key check scanned the whole table —
  quadratic in the batch size;
* **composite-key joins** — the planner fuses every equality conjunct
  linking two ranges into one multi-attribute hash probe
  (:func:`repro.core.engine.joins.equi_join_rows` with attribute lists)
  instead of the seed's single-attribute join followed by a residual
  three-valued selection over the much larger intermediate result.

Baselines are the *seed* behaviours, reproduced verbatim below.  Every
measurement first asserts that fast path and seed path produce identical
rows, so the benchmark doubles as an information-preservation check.

Run styles:

* under pytest (quick sizes, used by CI as a smoke test):
  ``PYTHONPATH=src python -m pytest benchmarks/bench_e14_bulk_mutation.py -q``
* standalone (full sweep, writes results.json):
  ``PYTHONPATH=src python benchmarks/bench_e14_bulk_mutation.py``
  (pass ``--quick`` for the small sweep).
"""

from __future__ import annotations

import os
import random
import sys
import time
from typing import Callable, List, Tuple

from repro.constraints.keys import KeyConstraint
from repro.core.engine.joins import equi_join_rows
from repro.core.threevalued import compare
from repro.core.tuples import XTuple
from repro.datagen import random_partial_relation
from repro.quel.evaluator import run_query
from repro.storage.database import Database
from repro.storage.table import Table

ATTRIBUTES = ("A", "B", "C", "D", "E", "F")
DOMAIN_SIZE = 64
NULL_RATE = 0.3
FULL_SIZES = (1_000, 10_000)
QUICK_SIZES = (200, 500)
#: Above this size the quadratic seed loops run once instead of best-of-3.
SINGLE_SHOT_THRESHOLD = 2_000


# ---------------------------------------------------------------------------
# Seed baselines (verbatim reproductions of the pre-bulk code paths)
# ---------------------------------------------------------------------------

def seed_insert_many(table: Table, rows) -> List[XTuple]:
    """The seed ``Table.insert_many``: a bare loop of ``insert``."""
    return [table.insert(row) for row in rows]


def seed_delete_many(table: Table, rows) -> int:
    """The seed idiom for batch deletion: a loop of ``delete``."""
    return sum(table.delete(row) for row in rows)


def seed_two_attribute_join(left_rows, right_rows) -> List[XTuple]:
    """The seed planner's strategy for ``l.A = r.A and l.B = r.B``:
    a single-attribute hash join, then the second equality as a residual
    three-valued selection over the (much larger) intermediate result."""
    joined = equi_join_rows(left_rows, right_rows, "l.A", "r.A")
    return [
        row for row in joined
        if compare(row["l.B"], "=", row["r.B"]).is_true()
    ]


# ---------------------------------------------------------------------------
# Workload builders
# ---------------------------------------------------------------------------

def keyed_rows(count: int, seed: int) -> List[Tuple]:
    """(K, A, B): unique keys plus two low-cardinality payload columns."""
    rng = random.Random(seed)
    return [
        (i, rng.randrange(DOMAIN_SIZE), rng.randrange(DOMAIN_SIZE))
        for i in range(count)
    ]


def keyed_table() -> Table:
    table = Table(["K", "A", "B"], constraints=[KeyConstraint(["K"])], name="KEYED")
    table.create_index(["A"])
    return table


def partial_rows(count: int, seed: int) -> List[XTuple]:
    relation = random_partial_relation(
        ATTRIBUTES, DOMAIN_SIZE, count, NULL_RATE, seed=seed, name="P"
    )
    return list(relation.tuples())


def plain_table() -> Table:
    table = Table(ATTRIBUTES, name="PLAIN")
    table.create_index(["A"])
    table.create_index(["A", "B"])
    return table


def join_operands(count: int, seed: int):
    """Prefix-renamed rows the way the planner presents them to the kernel.

    ``A`` has ~count/10 distinct values (the single-key join fans out),
    ``B`` has 10 (the composite key cuts the fan-out tenfold).
    """
    rng = random.Random(seed)
    a_domain = max(count // 10, 1)
    left = [
        XTuple({"l.A": rng.randrange(a_domain), "l.B": rng.randrange(10), "l.X": i})
        for i in range(count)
    ]
    right = [
        XTuple({"r.A": rng.randrange(a_domain), "r.B": rng.randrange(10), "r.Y": i})
        for i in range(count)
    ]
    return left, right


# ---------------------------------------------------------------------------
# Measurement harness
# ---------------------------------------------------------------------------

def _time(fn: Callable[[], object], single_shot: bool) -> Tuple[float, object]:
    """Wall time of *fn* — best of three, or one shot for slow baselines."""
    best = float("inf")
    value = None
    for _ in range(1 if single_shot else 3):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_experiments(sizes=FULL_SIZES, metric=None, line=None):
    """Measure every op at every size, asserting bulk/seed agreement."""

    def emit(op, variant, rows, seconds, **extra):
        if metric is not None:
            metric(op, seconds, variant=variant, rows=rows, **extra)

    for size in sizes:
        single_shot = size > SINGLE_SHOT_THRESHOLD

        # -- bulk load, key-constrained table -------------------------------
        rows = keyed_rows(size, seed=size)
        seed_seconds, _ = _time(lambda: seed_insert_many(keyed_table(), rows), single_shot)
        engine_seconds, _ = _time(lambda: keyed_table().insert_many(rows), False)
        seed_table, bulk_table = keyed_table(), keyed_table()
        seed_insert_many(seed_table, rows)
        bulk_table.insert_many(rows)
        assert set(seed_table.rows()) == set(bulk_table.rows())
        emit("bulk_load_keyed", "seed", size, seed_seconds)
        emit("bulk_load_keyed", "engine", size, engine_seconds,
             speedup=round(seed_seconds / engine_seconds, 2))

        # -- bulk load, unconstrained nullable table -------------------------
        xrows = partial_rows(size, seed=size + 1)
        seed_seconds, _ = _time(lambda: seed_insert_many(plain_table(), xrows), False)
        engine_seconds, _ = _time(lambda: plain_table().insert_many(xrows), False)
        seed_table, bulk_table = plain_table(), plain_table()
        seed_insert_many(seed_table, xrows)
        bulk_table.insert_many(xrows)
        assert set(seed_table.rows()) == set(bulk_table.rows())
        emit("bulk_load_plain", "seed", size, seed_seconds,
             null_rate=NULL_RATE, attributes=len(ATTRIBUTES))
        emit("bulk_load_plain", "engine", size, engine_seconds,
             null_rate=NULL_RATE, attributes=len(ATTRIBUTES),
             speedup=round(seed_seconds / engine_seconds, 2))

        # -- bulk delete ------------------------------------------------------
        victims = xrows[::2]

        def timed_delete(delete_fn):
            """Rebuild the table outside the clock; time only the deletes."""
            best = float("inf")
            removed = None
            for _ in range(3):
                table = plain_table()
                table.insert_many(xrows)
                start = time.perf_counter()
                removed = delete_fn(table)
                best = min(best, time.perf_counter() - start)
            return best, removed

        seed_seconds, seed_removed = timed_delete(lambda t: seed_delete_many(t, victims))
        engine_seconds, bulk_removed = timed_delete(lambda t: t.delete_many(victims))
        assert seed_removed == bulk_removed
        emit("bulk_delete", "seed", size, seed_seconds)
        emit("bulk_delete", "engine", size, engine_seconds,
             speedup=round(seed_seconds / engine_seconds, 2))

        # -- composite-key join vs single-key join + residual ----------------
        left, right = join_operands(size, seed=size + 2)
        seed_seconds, seed_joined = _time(
            lambda: seed_two_attribute_join(left, right), single_shot
        )
        engine_seconds, engine_joined = _time(
            lambda: equi_join_rows(left, right, ("l.A", "l.B"), ("r.A", "r.B")), False
        )
        assert set(seed_joined) == set(engine_joined)
        emit("composite_join", "seed", size, seed_seconds,
             matches=len(engine_joined))
        emit("composite_join", "engine", size, engine_seconds,
             matches=len(engine_joined),
             speedup=round(seed_seconds / engine_seconds, 2))

        if line is not None:
            line(f"n={size}: bulk/seed rows identical on every op (metrics in results.json)")

    # -- planner trace: the fused join is what actually runs ----------------
    database = Database("e14")
    supply = database.create_table("L", ["A", "B", "X"])
    demand = database.create_table("R", ["A", "B", "Y"])
    supply.insert_many([(i % 7, i % 3, i) for i in range(40)])
    demand.insert_many([(i % 7, i % 5, i) for i in range(40)])
    result = run_query(
        "range of l is L range of r is R retrieve (l.X, r.Y) "
        "where l.A = r.A and l.B = r.B",
        database,
        strategy="algebra",
    )
    joins = [step for step in result.plan.steps if "hash equi-join" in step]
    assert len(joins) == 1 and "on [" in joins[0], result.plan.explain()
    assert not any("residual" in step for step in result.plan.steps)
    if line is not None:
        line(f"planner emits one fused composite join: {joins[0]!r}")


# ---------------------------------------------------------------------------
# pytest entry point (quick smoke + agreement assertions)
# ---------------------------------------------------------------------------

def test_bulk_vs_seed_quick(record):
    """Quick-mode sweep: asserts bulk/seed agreement, records metrics."""
    run_experiments(sizes=QUICK_SIZES, metric=record.metric, line=record.line)


# ---------------------------------------------------------------------------
# Standalone entry point (full sweep, writes benchmarks/results.json)
# ---------------------------------------------------------------------------

def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    sizes = QUICK_SIZES if quick else FULL_SIZES

    here = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, here)
    import conftest  # the benchmark harness recorder/writer

    recorder = conftest.ExperimentRecorder("e14_bulk_mutation")
    run_experiments(sizes=sizes, metric=recorder.metric, line=recorder.line)

    results_path = os.path.join(here, "results.json")
    conftest.write_results_json(results_path)

    metrics = conftest._METRICS["e14_bulk_mutation"]
    by_key = {(m["op"], m["variant"], m["rows"]): m for m in metrics}
    print(f"{'op':<18} {'rows':>6} {'seed s':>10} {'engine s':>10} {'speedup':>8}")
    for op in ("bulk_load_keyed", "bulk_load_plain", "bulk_delete", "composite_join"):
        for size in sizes:
            seed = by_key.get((op, "seed", size))
            engine = by_key.get((op, "engine", size))
            if seed and engine:
                print(
                    f"{op:<18} {size:>6} {seed['seconds']:>10.4f} "
                    f"{engine['seconds']:>10.4f} "
                    f"{seed['seconds'] / engine['seconds']:>7.1f}x"
                )
    print(f"\nwrote {results_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
