"""E17 — the streaming operator-tree executor against the materializing path.

The executor PR claims the win of batch-at-a-time pipelining on
*selective multi-join pipelines*: the materializing path
(``Plan(query, streaming=False)``, the pre-exec behaviour kept as the
differential baseline) builds a full intermediate ``XRelation`` — set
construction, reduction to minimal form, relation allocation — after
every join and every residual selection, paying for rows the next
operator immediately discards; the streaming path pulls tuple blocks
through the operator tree and materialises exactly once, at the end.

Two measured operations per size, both on a selective 3-way join
(pushed filters on the first and last range, a non-pushable residual
conjunct cutting the joined stream):

* ``first_page`` — time until the pipeline has produced its first
  PAGE_ROWS answer rows (``Pipeline.iter_rows``), against the
  materializing path, which cannot yield anything before draining
  everything.  This is *the* streaming capability — first rows without
  materializing any intermediate — and the PR's ≥ 3× acceptance gate at
  10k rows (measured far above it; see results.json).
* ``full_drain`` — complete evaluation to the canonical answer.  The
  streaming win here is the removed per-step set/reduce/allocate work
  plus the compiled residual filters; the join tuple construction is
  shared by both paths, so this ratio is structurally smaller.

Every measurement first asserts the two paths produce information-wise
identical answers (``XRelation`` equality) and that the streamed first
page is a subset of the canonical answer, so the benchmark doubles as a
differential check.

Run styles:

* under pytest (quick sizes, used by CI as a smoke test):
  ``PYTHONPATH=src python -m pytest benchmarks/bench_e17_streaming_executor.py -q``
* standalone (full sweep at 10k–100k, writes results.json, asserts the
  ≥ 3× first-page gate):
  ``PYTHONPATH=src python benchmarks/bench_e17_streaming_executor.py``
  (pass ``--quick`` for the small sweep).
"""

from __future__ import annotations

import os
import random
import sys
import time
from itertools import islice
from typing import Callable, List, Tuple

from repro.quel.evaluator import compile_query
from repro.quel.planner import Plan
from repro.storage.database import Database

FULL_SIZES = (10_000, 100_000)
QUICK_SIZES = (500, 1_500)
#: Answer rows the first-page workload waits for.
PAGE_ROWS = 10
#: Nulls per payload cell — intermediates carry dominated rows, so the
#: materializing path's per-step reduction does real work.
NULL_RATE = 0.25

#: Selective on both ends: ``r.A = 1`` keeps ~1/7 of R, ``t.D < n/100``
#: keeps ~1/100 of T, and the residual ``r.P <= s.Q`` cuts the joined
#: stream in flight — the {limit} is the per-size selectivity knob.
QUERY_TEMPLATE = (
    "range of r is R range of s is S range of t is T "
    "retrieve (r.A, s.Q, t.D) "
    "where r.B = s.B and s.C = t.C and r.A = 1 and r.P <= s.Q "
    "and t.D < {limit}"
)


def query_for(database: Database, size: int):
    text = QUERY_TEMPLATE.format(limit=max(size // 100, 10))
    return compile_query(text, database).query


def build_database(size: int, seed: int) -> Database:
    """R –B– S –C– T with a selective pushed filter on R (``r.A = 1``
    keeps ~1/7) and a residual conjunct ``r.P <= s.Q`` the planner can
    only apply after the first join — the shape where the materializing
    path keeps building intermediates the residual then discards."""
    rng = random.Random(seed)
    link_domain = max(size // 20, 2)

    def payload(hi: int):
        return None if rng.random() < NULL_RATE else rng.randrange(hi)

    database = Database("e17")
    r = database.create_table("R", ["A", "B", "P"])
    s = database.create_table("S", ["B", "C", "Q"])
    t = database.create_table("T", ["C", "D"])
    r.insert_many([
        (i % 7, rng.randrange(link_domain), payload(100)) for i in range(size)
    ])
    s.insert_many([
        (rng.randrange(link_domain), rng.randrange(link_domain), payload(100))
        for i in range(size)
    ])
    t.insert_many([(rng.randrange(link_domain), i) for i in range(size)])
    return database


# ---------------------------------------------------------------------------
# Measurement harness
# ---------------------------------------------------------------------------

def _time(fn: Callable[[], object], repeat: int = 3) -> Tuple[float, object]:
    """Wall time of *fn* — best of *repeat* runs."""
    best = float("inf")
    value = None
    for _ in range(repeat):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_experiments(sizes=FULL_SIZES, metric=None, line=None, assert_gate=False):
    """Measure both workloads at every size, asserting path agreement.

    With *assert_gate* (the standalone full sweep) the ≥ 3× first-page
    speedup at every measured size is asserted, not just recorded.
    """

    def emit(op, variant, rows, seconds, **extra):
        if metric is not None:
            metric(op, seconds, variant=variant, rows=rows, **extra)

    for size in sizes:
        database = build_database(size, seed=size)
        query = query_for(database, size)
        repeat = 3 if size < 50_000 else 2

        # -- (a) full drain: canonical answer, both executors -----------------
        mat_seconds, mat_answer = _time(
            lambda: Plan(query, database, streaming=False).execute(), repeat
        )
        stream_seconds, stream_answer = _time(
            lambda: Plan(query, database).execute(), repeat
        )
        assert stream_answer == mat_answer
        emit("selective_3way_full_drain", "materializing", size, mat_seconds)
        emit("selective_3way_full_drain", "streaming", size, stream_seconds,
             speedup=round(mat_seconds / stream_seconds, 2))

        # -- (b) first page: PAGE_ROWS answer rows off the lazy pipeline ------
        def first_page():
            pipeline = Plan(query, database).compile()
            return list(islice(pipeline.iter_rows(), PAGE_ROWS))

        page_seconds, page = _time(first_page, repeat)
        answer_rows = set(mat_answer.rows())
        assert page and set(page) <= answer_rows
        # The materializing path cannot page: its cost to first row IS the
        # full drain measured above.
        speedup = round(mat_seconds / page_seconds, 2)
        emit("selective_3way_first_page", "materializing", size, mat_seconds,
             page_rows=PAGE_ROWS)
        emit("selective_3way_first_page", "streaming", size, page_seconds,
             page_rows=PAGE_ROWS, speedup=speedup)
        if assert_gate:
            assert speedup >= 3.0, (
                f"first-page speedup {speedup}x at {size} rows is below the 3x gate"
            )

        # The streaming plan really did stream: the trace carries the
        # operator actuals and the tree renders with per-node timings.
        plan = Plan(query, database)
        plan.execute()
        assert any("join" in step for step in plan.steps)
        analyzed = plan.pipeline.explain(analyze=True)
        assert "actual rows=" in analyzed and "time=" in analyzed

        if line is not None:
            line(
                f"n={size}: streaming/materializing answers identical; "
                f"first {PAGE_ROWS} rows {speedup}x ahead of full "
                f"materialization (metrics in results.json)"
            )


# ---------------------------------------------------------------------------
# pytest entry point (quick smoke + agreement assertions)
# ---------------------------------------------------------------------------

def test_streaming_vs_materializing_quick(record):
    """Quick-mode sweep: asserts path agreement, records metrics."""
    run_experiments(sizes=QUICK_SIZES, metric=record.metric, line=record.line)


# ---------------------------------------------------------------------------
# Standalone entry point (full sweep, writes benchmarks/results.json)
# ---------------------------------------------------------------------------

def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    sizes = QUICK_SIZES if quick else FULL_SIZES

    here = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, here)
    import conftest  # the benchmark harness recorder/writer

    recorder = conftest.ExperimentRecorder("e17_streaming_executor")
    run_experiments(
        sizes=sizes, metric=recorder.metric, line=recorder.line,
        assert_gate=not quick,
    )

    results_path = os.path.join(here, "results.json")
    conftest.write_results_json(results_path)

    metrics = conftest._METRICS["e17_streaming_executor"]
    by_key = {(m["op"], m["variant"], m["rows"]): m for m in metrics}
    print(f"{'op':<28} {'rows':>7} {'mat s':>10} {'stream s':>10} {'speedup':>8}")
    for op in ("selective_3way_full_drain", "selective_3way_first_page"):
        for size in sizes:
            mat = by_key.get((op, "materializing", size))
            stream = by_key.get((op, "streaming", size))
            if mat and stream:
                print(
                    f"{op:<28} {size:>7} {mat['seconds']:>10.4f} "
                    f"{stream['seconds']:>10.4f} "
                    f"{mat['seconds'] / stream['seconds']:>7.1f}x"
                )
    print(f"\nwrote {results_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
