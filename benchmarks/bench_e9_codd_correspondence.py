"""E9 — Section 7 claims (1)–(5): the Codd-relation ↔ total-x-relation homomorphism.

For each of the five primitive operators (union, difference, Cartesian
product, selection, projection) the benchmark builds random *total*
relations, applies the classical operator and the generalised operator,
and asserts the results coincide as x-relations; the timings quantify the
overhead of working through the x-relation machinery when no nulls are
present (the price of generality on classical data).
"""

import pytest

from repro import Relation, XRelation
from repro.codd import (
    codd_difference,
    codd_product,
    codd_project,
    codd_union,
    select_true,
)
from repro.core import algebra, setops
from repro.datagen import RelationGenerator


def _total_relation(attributes, rows, seed, name):
    generator = RelationGenerator(
        attributes,
        {a: [f"{a.lower()}{i}" for i in range(8)] for a in attributes},
        default_null_rate=0.0,
        seed=seed,
    )
    return generator.relation(rows, name=name)


class TestPaperRows:
    def test_all_five_correspondences(self, record, benchmark):
        benchmark.group = "E9 paper rows"
        a = _total_relation(["A", "B"], 20, 1, "A")
        b = _total_relation(["A", "B"], 20, 2, "B")
        c = _total_relation(["C"], 5, 3, "C")

        def check():
            results = {
                "union": XRelation(codd_union(a, b)) == XRelation(setops.union(a, b)),
                "difference": XRelation(codd_difference(a, b)) == XRelation(setops.difference(a, b)),
                "product": XRelation(codd_product(a, c)) == algebra.product(a, c),
                "selection": XRelation(select_true(a, "A", "=", "a1")) == algebra.select_constant(a, "A", "=", "a1"),
                "projection": XRelation(codd_project(a, ["B"])) == algebra.project(a, ["B"]),
            }
            return results

        results = benchmark(check)
        record.table(
            "operation-preserving correspondence on total relations:",
            [f"{name:<11s}: {'preserved' if ok else 'VIOLATED'}" for name, ok in results.items()],
        )
        assert all(results.values())

    def test_containment_correspondence(self, record, benchmark):
        benchmark.group = "E9 paper rows"
        a = _total_relation(["A", "B"], 20, 4, "A")
        b = _total_relation(["A", "B"], 8, 5, "B")
        union_relation = codd_union(a, b)
        verdict = benchmark(lambda: XRelation(union_relation).contains(XRelation(a)))
        record.line(f"R1 ⊇ R2 on Codd relations iff R̂1 ⊒ R̂2 on total x-relations: {verdict}")
        assert verdict


class TestCost:
    @pytest.mark.parametrize("rows", [50, 200, 800])
    def test_classical_union_cost(self, benchmark, rows):
        a = _total_relation(["A", "B"], rows, 10, "A")
        b = _total_relation(["A", "B"], rows, 11, "B")
        benchmark.group = "E9 correspondence cost"
        benchmark.name = f"codd-union rows={rows}"
        benchmark(lambda: codd_union(a, b))

    @pytest.mark.parametrize("rows", [50, 200, 800])
    def test_generalised_union_cost_on_total_data(self, benchmark, rows):
        a = _total_relation(["A", "B"], rows, 10, "A")
        b = _total_relation(["A", "B"], rows, 11, "B")
        benchmark.group = "E9 correspondence cost"
        benchmark.name = f"generalised-union rows={rows}"
        benchmark(lambda: setops.union(a, b))

    @pytest.mark.parametrize("rows", [50, 200, 800])
    def test_classical_projection_cost(self, benchmark, rows):
        a = _total_relation(["A", "B", "C"], rows, 12, "A")
        benchmark.group = "E9 correspondence cost"
        benchmark.name = f"codd-projection rows={rows}"
        benchmark(lambda: codd_project(a, ["A", "B"]))

    @pytest.mark.parametrize("rows", [50, 200, 800])
    def test_generalised_projection_cost_on_total_data(self, benchmark, rows):
        a = _total_relation(["A", "B", "C"], rows, 12, "A")
        benchmark.group = "E9 correspondence cost"
        benchmark.name = f"generalised-projection rows={rows}"
        benchmark(lambda: algebra.project(a, ["A", "B"]))
