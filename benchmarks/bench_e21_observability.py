"""E21 — observability overhead: instrumentation must cost ≤ 5%.

The observability PR instruments every layer (session, planner,
executor, WAL, statistics).  Its acceptance bar is that the hot paths
the earlier benchmarks certified do not give their wins back:

* **E16 prepared lookup** — ``prepared.execute`` in a tight loop.  The
  prepared fast path is deliberately untraced (only ``Session.execute``
  opens a :class:`~repro.obs.QueryTrace`), so its per-call cost is a
  handful of cached-child lookups at most.
* **E14 bulk load** — ``insert_many`` into a keyed table.  Storage-layer
  bulk mutation emits no per-row metrics at all (WAL metrics are
  per-record, statistics gauges are scrape-time), so the loop must be
  byte-for-byte the uninstrumented one.
* **traced lookup** (recorded, not gated) — the same lookup through
  ``session.execute``, which pays for a full trace per statement: phase
  timers, the trace ring buffer, counters and a histogram observation.

Each workload runs twice on identical databases: once against a live
:class:`~repro.obs.MetricsRegistry` and once against
``repro.obs.disabled_registry()``, whose families hand out shared no-op
children — the true uninstrumented baseline.  The standalone full sweep
enforces ``instrumented/disabled − 1 ≤ 5%`` on the two gated paths.

Run styles:

* under pytest (quick sizes, used by CI as a smoke test):
  ``PYTHONPATH=src python -m pytest benchmarks/bench_e21_observability.py -q``
* standalone (full sweep, writes results.json, enforces the gate):
  ``PYTHONPATH=src python benchmarks/bench_e21_observability.py``
  (pass ``--quick`` for the small sweep).
"""

from __future__ import annotations

import gc
import os
import random
import statistics
import sys
import time
from typing import Callable, List, Tuple

import repro
from repro.constraints.keys import KeyConstraint
from repro.obs import MetricsRegistry, disabled_registry
from repro.storage.database import Database

FULL_SIZES = (10_000,)
QUICK_SIZES = (500,)
#: Lookups per measurement — large enough that one measurement is tens
#: of milliseconds, so the 5% gate is above timer noise.
FULL_LOOKUPS = 400
QUICK_LOOKUPS = 60

#: The two paths the gate protects (the traced path is informational).
GATED_OPS = ("prepared_lookup", "bulk_load")
OVERHEAD_GATE = 0.05

LOOKUP_QUERY = 'range of b is BIG retrieve (b.B) where b.A = $a'


# ---------------------------------------------------------------------------
# Workload builders
# ---------------------------------------------------------------------------

def lookup_database(size: int, seed: int, registry: MetricsRegistry) -> Database:
    """BIG(A, B): ~2 rows per A value, indexed on A (the E16 shape)."""
    rng = random.Random(seed)
    database = Database("e21-lookup", metrics=registry)
    big = database.create_table("BIG", ["A", "B"])
    big.insert_many([(rng.randrange(max(size // 2, 2)), i) for i in range(size)])
    big.create_index(["A"], name="big_a")
    return database


def _time_pair(
    disabled_run: Callable[[], object],
    instrumented_run: Callable[[], object],
    rounds: int = 7,
) -> Tuple[float, float, float]:
    """Time both variants and estimate the overhead ratio robustly.

    Returns ``(disabled_best, instrumented_best, overhead)`` where the
    overhead is the **median of per-round paired ratios** — each round
    runs disabled then instrumented back to back (so both see the same
    machine conditions) with the cyclic GC paused, and the median
    discards preempted rounds.  Sequential best-of blocks measure ±10%
    "overhead" between *identical* binaries on a busy single-core box;
    this protocol gets the noise floor under ~3%, which is what makes a
    5% gate enforceable.
    """
    best = [float("inf"), float("inf")]
    ratios = []
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            disabled_run()
            middle = time.perf_counter()
            instrumented_run()
            end = time.perf_counter()
        finally:
            gc.enable()
        best[0] = min(best[0], middle - start)
        best[1] = min(best[1], end - middle)
        ratios.append((end - middle) / (middle - start))
    return best[0], best[1], statistics.median(ratios) - 1.0


def _lookup_run(
    size: int, registry: MetricsRegistry, lookups: int, traced: bool
) -> Callable[[], None]:
    """A warmed repeated-lookup closure bound to its own database."""
    database = lookup_database(size, seed=size, registry=registry)
    session = repro.connect(database)
    prepared = session.prepare(LOOKUP_QUERY)
    rng = random.Random(size + 1)
    keys = [rng.randrange(max(size // 2, 2)) for _ in range(lookups)]
    prepared.execute({"a": keys[0]})  # warm the compiled plan

    if traced:
        def run():
            for k in keys:
                session.execute(LOOKUP_QUERY, {"a": k}).rows
    else:
        def run():
            for k in keys:
                prepared.execute({"a": k})
    return run


def measure_lookup(
    size: int, lookups: int, traced: bool
) -> Tuple[float, float, float]:
    return _time_pair(
        _lookup_run(size, disabled_registry(), lookups, traced),
        _lookup_run(size, MetricsRegistry(), lookups, traced),
    )


def measure_bulk_load(size: int) -> Tuple[float, float, float]:
    """The E14 shape: ``insert_many`` into a keyed table (one indexed
    constraint pass), rebuilt fresh per run."""
    rows = [(i % 10, i) for i in range(size)]

    def load_run(registry: MetricsRegistry) -> Callable[[], None]:
        def run():
            database = Database("e21-load", metrics=registry)
            database.create_table(
                "DST", ["A", "B"], constraints=[KeyConstraint(["B"])]
            )
            database.table("DST").insert_many(rows)
        return run

    return _time_pair(
        load_run(disabled_registry()), load_run(MetricsRegistry())
    )


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------

def run_experiments(sizes=FULL_SIZES, lookups=FULL_LOOKUPS,
                    metric=None, line=None, enforce=False):
    """Measure every workload instrumented vs disabled at every size.

    With *enforce* (the standalone full sweep) the ≤ 5% overhead gate is
    asserted on the two protected hot paths at the largest size.
    """

    def emit(op, variant, rows, seconds, **extra):
        if metric is not None:
            metric(op, seconds, variant=variant, rows=rows, **extra)

    overheads = {}
    for size in sizes:
        measurements = {
            "prepared_lookup": lambda: measure_lookup(size, lookups, traced=False),
            "traced_lookup": lambda: measure_lookup(size, lookups, traced=True),
            "bulk_load": lambda: measure_bulk_load(size),
        }
        for op, measure in measurements.items():
            disabled_seconds, instrumented_seconds, overhead = measure()
            overheads[(op, size)] = overhead
            emit(op, "disabled", size, disabled_seconds)
            emit(op, "instrumented", size, instrumented_seconds,
                 overhead=round(overhead, 4))
            if line is not None:
                line(f"n={size} {op}: disabled {disabled_seconds:.4f}s, "
                     f"instrumented {instrumented_seconds:.4f}s "
                     f"({overhead:+.1%} overhead)")

        # the instrumented run really did record: sanity, not timing
        registry = MetricsRegistry()
        session = repro.connect(lookup_database(64, seed=1, registry=registry))
        session.execute(LOOKUP_QUERY, {"a": 1}).rows
        rendered = registry.render_prometheus()
        assert "repro_statements_total" in rendered
        assert "repro_statement_seconds_bucket" in rendered

    if enforce:
        largest = max(sizes)
        for op in GATED_OPS:
            achieved = overheads[(op, largest)]
            assert achieved <= OVERHEAD_GATE, (
                f"instrumentation overhead {achieved:.1%} on {op} at "
                f"n={largest} exceeds the {OVERHEAD_GATE:.0%} gate"
            )


# ---------------------------------------------------------------------------
# pytest entry point (quick smoke, no timing gate — CI boxes are noisy)
# ---------------------------------------------------------------------------

def test_observability_overhead_quick(record):
    """Quick-mode sweep: records the overheads, asserts the series flow."""
    run_experiments(sizes=QUICK_SIZES, lookups=QUICK_LOOKUPS,
                    metric=record.metric, line=record.line)


# ---------------------------------------------------------------------------
# Standalone entry point (full sweep, writes benchmarks/results.json)
# ---------------------------------------------------------------------------

def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    sizes = QUICK_SIZES if quick else FULL_SIZES
    lookups = QUICK_LOOKUPS if quick else FULL_LOOKUPS

    here = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, here)
    import conftest  # the benchmark harness recorder/writer

    recorder = conftest.ExperimentRecorder("e21_observability")
    run_experiments(sizes=sizes, lookups=lookups,
                    metric=recorder.metric, line=recorder.line,
                    enforce=not quick)

    results_path = os.path.join(here, "results.json")
    conftest.write_results_json(results_path)

    metrics = conftest._METRICS["e21_observability"]
    by_key = {(m["op"], m["variant"], m["rows"]): m for m in metrics}
    print(f"{'op':<18} {'rows':>6} {'disabled s':>11} {'instr s':>10} {'overhead':>9}")
    for op in ("prepared_lookup", "traced_lookup", "bulk_load"):
        for size in sizes:
            disabled = by_key.get((op, "disabled", size))
            instrumented = by_key.get((op, "instrumented", size))
            if disabled and instrumented:
                overhead = instrumented["overhead"]
                print(
                    f"{op:<18} {size:>6} {disabled['seconds']:>11.4f} "
                    f"{instrumented['seconds']:>10.4f} {overhead:>+8.1%}"
                )
    print(f"\nwrote {results_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
