"""E20 — durability: WAL overhead, checkpointing, and recovery replay.

The write-ahead-log PR makes every bulk entry point log a replayable
record before applying.  This benchmark quantifies what that costs and
what recovery buys:

* **bulk load overhead** — the same keyed bulk load against three
  configurations: no WAL attached (the in-memory baseline),
  ``sync="none"`` (log buffered, flushed by the OS / checkpoints) and
  ``sync="commit"`` (fsync at every autocommit boundary).  The logical
  log appends one record per *statement* — a 10k-row ``insert_many`` is
  one frame — so the ``sync="none"`` overhead is essentially the pickle
  + CRC of the row batch and must stay small (the full sweep asserts
  ≤ 30%);
* **checkpoint** — serialising the whole database (rows + index defs +
  statistics) into ``checkpoint.bin`` and truncating the log;
* **recovery replay** — ``Database.open`` on a crash-copy of the
  directory (log only, no final checkpoint): read + checksum + replay of
  the whole logical log.  Every recovery measurement first asserts the
  recovered rows, index specs and statistics equal the live oracle's.

Run styles:

* under pytest (quick sizes, used by CI as a smoke test):
  ``PYTHONPATH=src python -m pytest benchmarks/bench_e20_durability.py -q``
* standalone (full sweep, writes results.json):
  ``PYTHONPATH=src python benchmarks/bench_e20_durability.py``
  (pass ``--quick`` for the small sweep).
"""

from __future__ import annotations

import os
import random
import shutil
import sys
import tempfile
import threading
import time
from typing import Callable, List, Optional, Tuple

from repro.constraints.keys import KeyConstraint
from repro.storage.database import Database

FULL_SIZES = (1_000, 10_000)
QUICK_SIZES = (200, 500)
DOMAIN_SIZE = 64
#: The full sweep enforces the PR's overhead budget for the buffered log.
MAX_SYNC_NONE_OVERHEAD = 0.30
FULL_COMMIT_THREADS = (8, 50)   # (threads, commits per thread)
QUICK_COMMIT_THREADS = (4, 15)


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------

def keyed_rows(count: int, seed: int) -> List[Tuple]:
    rng = random.Random(seed)
    return [
        (i, rng.randrange(DOMAIN_SIZE), rng.randrange(DOMAIN_SIZE))
        for i in range(count)
    ]


def make_database(directory: Optional[str], sync: str = "none") -> Database:
    """A KEYED table (key on K, index on A), durable when *directory* set."""
    database = Database.open(directory, sync=sync) if directory else Database("e20")
    database.create_table(
        "KEYED", ["K", "A", "B"], constraints=[KeyConstraint(["K"])]
    )
    database.table("KEYED").create_index(["A"])
    return database


def crash_copy(source: str, target: str) -> None:
    """The durable files exactly as a crash would leave them."""
    if os.path.exists(target):
        shutil.rmtree(target)
    shutil.copytree(source, target)


def oracle_state(database: Database):
    table = database.table("KEYED")
    return (
        frozenset(table.rows()),
        dict(table.index_specs()),
        table.statistics.copy(),
    )


def assert_recovered(recovered: Database, oracle) -> None:
    rows, indexes, statistics = oracle
    table = recovered.table("KEYED")
    assert frozenset(table.rows()) == rows
    assert dict(table.index_specs()) == indexes
    assert table.statistics == statistics


# ---------------------------------------------------------------------------
# Measurement harness
# ---------------------------------------------------------------------------

def _time(fn: Callable[[], object]) -> Tuple[float, object]:
    """Best of three wall-clock runs."""
    best = float("inf")
    value = None
    for _ in range(3):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_experiments(sizes=FULL_SIZES, metric=None, line=None,
                    enforce_overhead=False):
    """Measure load/checkpoint/recovery at every size, verifying recovery
    against the live oracle each time."""

    def emit(op, variant, rows, seconds, **extra):
        if metric is not None:
            metric(op, seconds, variant=variant, rows=rows, **extra)

    root = tempfile.mkdtemp(prefix="bench-e20-")
    try:
        for size in sizes:
            rows = keyed_rows(size, seed=size)

            # -- bulk load: baseline vs WAL sync modes ----------------------
            def durable_dir(tag):
                path = os.path.join(root, f"{tag}-{size}")
                if os.path.exists(path):
                    shutil.rmtree(path)
                return path

            def timed_load(factory):
                """Database construction and teardown stay off the clock —
                the metric is the incremental cost of logging the load."""
                best = float("inf")
                for _ in range(3):
                    database = factory()
                    start = time.perf_counter()
                    database.insert_many("KEYED", rows)
                    best = min(best, time.perf_counter() - start)
                    if database.wal is not None:
                        database.wal.close()
                return best

            baseline_seconds = timed_load(lambda: make_database(None))
            none_seconds = timed_load(
                lambda: make_database(durable_dir("none"), "none")
            )
            commit_seconds = timed_load(
                lambda: make_database(durable_dir("commit"), "commit")
            )
            overhead = none_seconds / baseline_seconds - 1.0
            emit("bulk_load", "baseline", size, baseline_seconds)
            emit("bulk_load", "wal_none", size, none_seconds,
                 overhead=round(overhead, 3))
            emit("bulk_load", "wal_commit", size, commit_seconds,
                 overhead=round(commit_seconds / baseline_seconds - 1.0, 3))
            if enforce_overhead:
                assert overhead <= MAX_SYNC_NONE_OVERHEAD, (
                    f"sync='none' bulk-load overhead {overhead:.1%} exceeds "
                    f"the {MAX_SYNC_NONE_OVERHEAD:.0%} budget at n={size}"
                )
            if line is not None:
                line(
                    f"n={size}: bulk load {baseline_seconds * 1000:.1f}ms bare, "
                    f"+{overhead:.1%} with buffered WAL, "
                    f"+{commit_seconds / baseline_seconds - 1.0:.1%} with fsync-per-commit"
                )

            # -- checkpoint ------------------------------------------------
            source = durable_dir("replay")
            database = make_database(source, sync="none")
            database.insert_many("KEYED", rows)
            database.delete_many("KEYED", [{"K": k} for k in range(0, size, 7)])
            database.table("KEYED").analyze()
            database.wal.flush()
            oracle = oracle_state(database)
            checkpoint_dir = durable_dir("ckpt")
            ckpt = make_database(checkpoint_dir, sync="none")
            ckpt.insert_many("KEYED", rows)
            ckpt_seconds, _ = _time(lambda: ckpt.wal.checkpoint(ckpt))
            emit("checkpoint", "full", size, ckpt_seconds)
            ckpt.close()

            # -- recovery replay of the whole logical log --------------------
            def recover():
                target = os.path.join(root, f"recover-{size}")
                crash_copy(source, target)
                return Database.open(target, name="recovered")

            recover_seconds, recovered = _time(recover)
            assert_recovered(recovered, oracle)
            recovered.close()
            database.close()
            emit("recovery_replay", "log_tail", size, recover_seconds,
                 statements=3)
            if line is not None:
                line(
                    f"n={size}: checkpoint {ckpt_seconds * 1000:.1f}ms, "
                    f"log-replay recovery {recover_seconds * 1000:.1f}ms "
                    f"(recovered state verified against the live oracle)"
                )
    finally:
        shutil.rmtree(root, ignore_errors=True)


# ---------------------------------------------------------------------------
# Group commit (concurrent-network-service PR delta)
# ---------------------------------------------------------------------------

def run_group_commit(shape=FULL_COMMIT_THREADS, metric=None, line=None,
                     enforce=False):
    """Concurrent autocommit writers against ``sync="commit"``, with and
    without group commit.

    Without it every depth-0 commit fsyncs inline under the WAL lock —
    exactly one fsync per commit.  With it the fsync moves outside the
    append+apply critical section, so a commit whose records were already
    covered by a neighbour's fsync coalesces instead of issuing its own.
    Each variant's log is recovered afterwards and checked against the
    live row set, so the cheaper fsync schedule is shown to lose nothing.
    """
    thread_count, commits_each = shape
    commits = thread_count * commits_each
    root = tempfile.mkdtemp(prefix="bench-e20-gc-")
    try:
        for variant, group_commit in (("group", True), ("inline", False)):
            path = os.path.join(root, variant)
            database = Database.open(
                path, sync="commit", group_commit=group_commit
            )
            database.create_table("GC", ["K", "V"])
            wal = database.wal
            base_fsyncs = wal.fsyncs_issued
            base_coalesced = wal.commits_coalesced
            barrier = threading.Barrier(thread_count)

            def worker(tid: int) -> None:
                barrier.wait()
                for n in range(commits_each):
                    database.insert_many(
                        "GC", [(tid * commits_each + n, tid)]
                    )

            threads = [
                threading.Thread(target=worker, args=(tid,))
                for tid in range(thread_count)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start

            fsyncs = wal.fsyncs_issued - base_fsyncs
            coalesced = wal.commits_coalesced - base_coalesced
            live_rows = frozenset(database.table("GC").rows())
            database.close()

            # every commit either issued an fsync or rode a neighbour's
            assert fsyncs + coalesced == commits, (variant, fsyncs, coalesced)
            target = os.path.join(root, f"recover-{variant}")
            crash_copy(path, target)
            recovered = Database.open(target, name="recovered")
            assert frozenset(recovered.table("GC").rows()) == live_rows
            assert len(live_rows) == commits
            recovered.close()

            per_commit = fsyncs / commits
            if metric is not None:
                metric(
                    "group_commit", elapsed, variant=variant, rows=commits,
                    threads=thread_count, fsyncs=fsyncs,
                    coalesced=coalesced,
                    fsync_per_commit=round(per_commit, 3),
                )
            if line is not None:
                line(
                    f"{commits} commits on {thread_count} threads "
                    f"[{variant}]: {fsyncs} fsyncs "
                    f"({per_commit:.2f}/commit, {coalesced} coalesced) "
                    f"in {elapsed * 1000:.1f}ms; recovery verified"
                )
            if enforce:
                if group_commit:
                    assert coalesced > 0 and per_commit < 1.0, (
                        f"group commit coalesced nothing across "
                        f"{commits} concurrent commits"
                    )
                else:
                    assert fsyncs == commits, (
                        f"inline mode issued {fsyncs} fsyncs "
                        f"for {commits} commits"
                    )
    finally:
        shutil.rmtree(root, ignore_errors=True)


# ---------------------------------------------------------------------------
# pytest entry point (quick smoke + recovery verification)
# ---------------------------------------------------------------------------

def test_durability_quick(record):
    """Quick-mode sweep: verifies every recovery, records metrics.

    Timing budgets are only enforced on the standalone full sweep — CI
    shared runners are too noisy to gate on a 30% ratio."""
    run_experiments(sizes=QUICK_SIZES, metric=record.metric, line=record.line)


def test_group_commit_quick(record):
    """Quick concurrent-commit sweep; the coalescing floor is only
    enforced on the full sweep (4 threads × 15 commits may legitimately
    never overlap on a fast fsync)."""
    run_group_commit(
        shape=QUICK_COMMIT_THREADS, metric=record.metric, line=record.line
    )


# ---------------------------------------------------------------------------
# Standalone entry point (full sweep, writes benchmarks/results.json)
# ---------------------------------------------------------------------------

def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    sizes = QUICK_SIZES if quick else FULL_SIZES

    here = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, here)
    import conftest  # the benchmark harness recorder/writer

    recorder = conftest.ExperimentRecorder("e20_durability")
    run_experiments(
        sizes=sizes,
        metric=recorder.metric,
        line=recorder.line,
        enforce_overhead=not quick,
    )
    run_group_commit(
        shape=QUICK_COMMIT_THREADS if quick else FULL_COMMIT_THREADS,
        metric=recorder.metric,
        line=recorder.line,
        enforce=not quick,
    )

    results_path = os.path.join(here, "results.json")
    conftest.write_results_json(results_path)

    metrics = conftest._METRICS["e20_durability"]
    by_key = {(m["op"], m["variant"], m["rows"]): m for m in metrics}
    print(f"{'op':<16} {'variant':<11} {'rows':>6} {'seconds':>10} {'overhead':>9}")
    for op in ("bulk_load", "checkpoint", "recovery_replay"):
        for size in sizes:
            for variant in ("baseline", "wal_none", "wal_commit", "full", "log_tail"):
                entry = by_key.get((op, variant, size))
                if entry is None:
                    continue
                overhead = entry.get("overhead")
                suffix = f"{overhead:>8.1%}" if overhead is not None else f"{'—':>8}"
                print(
                    f"{op:<16} {variant:<11} {size:>6} "
                    f"{entry['seconds']:>10.4f} {suffix}"
                )
    for entry in metrics:
        if entry["op"] != "group_commit":
            continue
        print(
            f"{'group_commit':<16} {entry['variant']:<11} {entry['rows']:>6} "
            f"{entry['seconds']:>10.4f} "
            f"{entry['fsync_per_commit']:>6.2f}fs/c"
        )
    print(f"\nwrote {results_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
