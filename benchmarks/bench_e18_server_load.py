"""E18 — server load: multi-client HTTP throughput and cursor streaming.

The concurrent-network-service PR puts an asyncio HTTP front end
(:mod:`repro.server`) over one shared :class:`~repro.storage.Database`,
multiplexing per-connection sessions behind a single-writer /
concurrent-reader statement gate.  This benchmark quantifies the two
claims that justify the architecture:

* **first-page latency** — a cursor-paged retrieve
  (``POST /statements`` with ``cursor=true`` then ``GET /cursors/{id}``)
  ships its first page by draining the lazy pipeline block-by-block, so
  time-to-first-row must sit well below the full eager drain of the same
  statement.  The full sweep asserts ``first_page < 1/2 × full_drain``;
* **client concurrency** — N clients on threads issue the same total
  number of point retrieves as one serial client.  Readers overlap on
  the statement gate and engine work runs in a thread-pool executor, so
  the concurrent wall-clock must beat the serial one (round-trip latency
  hides behind engine compute) even on a single CPU.  The full sweep
  asserts the ≥ 2-client run is no slower than serial; per-request
  latency p50/p99 is recorded for both.

A mixed 10%-write workload is measured alongside (writes serialise on
the exclusive gate, so its throughput is reported, not gated).

Run styles:

* under pytest (quick sizes, used by CI as a smoke test):
  ``PYTHONPATH=src python -m pytest benchmarks/bench_e18_server_load.py -q``
* standalone (full sweep, writes results.json):
  ``PYTHONPATH=src python benchmarks/bench_e18_server_load.py``
  (pass ``--quick`` for the small sweep).
"""

from __future__ import annotations

import os
import random
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Tuple

from repro.obs import MetricsRegistry
from repro.server import ServerClient, serve
from repro.storage.database import Database

FULL_TABLE_ROWS = 20_000
QUICK_TABLE_ROWS = 3_000
FULL_REQUESTS = 400
QUICK_REQUESTS = 80
PAGE_ROWS = 64
CLIENTS = 4
WRITE_FRACTION = 0.1
#: The full sweep's structural budget for time-to-first-row.
MAX_FIRST_PAGE_RATIO = 0.5


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------

def make_server(table_rows: int):
    """A served database with one BIG table: A unique and indexed (so the
    point-read workload hits the prepared index fast path and the
    measurement is dominated by the service, not by table scans), B a
    97-ary hash."""
    database = Database("e18", metrics=MetricsRegistry())
    rng = random.Random(table_rows)
    database.create_table("BIG", ["A", "B", "C"])
    database.insert_many(
        "BIG",
        [(i, i % 97, rng.randrange(1 << 16)) for i in range(table_rows)],
    )
    database.table("BIG").create_index(["A"])
    handle = serve(database)
    return database, handle


def percentile(latencies: List[float], fraction: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def run_requests(client: ServerClient, count: int, table_rows: int,
                 seed: int, write_fraction: float = 0.0) -> List[float]:
    """Issue *count* point retrieves (plus a write mix) on one connection,
    returning every request's wall-clock latency."""
    rng = random.Random(seed)
    prepared = client.prepare(
        "range of t is BIG retrieve (t.C) where t.A = $a"
    )
    latencies = []
    for n in range(count):
        start = time.perf_counter()
        if rng.random() < write_fraction:
            client.execute(
                "append to BIG (A = $a, B = $b, C = 0)",
                {"a": table_rows + seed * count + n, "b": rng.randrange(97)},
            )
        else:
            prepared.execute({"a": rng.randrange(table_rows)})
        latencies.append(time.perf_counter() - start)
    return latencies


def timed_clients(handle, client_count: int, total_requests: int,
                  table_rows: int,
                  write_fraction: float = 0.0) -> Tuple[float, List[float]]:
    """Split *total_requests* across *client_count* threaded connections;
    returns (wall seconds, per-request latencies)."""
    share = total_requests // client_count
    collected: List[List[float]] = [[] for _ in range(client_count)]
    failures: List[BaseException] = []

    def worker(index: int) -> None:
        try:
            with ServerClient.for_handle(handle) as client:
                collected[index] = run_requests(
                    client, share, table_rows, seed=index,
                    write_fraction=write_fraction,
                )
        except BaseException as error:  # surfaced after join
            failures.append(error)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(client_count)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if failures:
        raise failures[0]
    return elapsed, [latency for chunk in collected for latency in chunk]


# ---------------------------------------------------------------------------
# Measurement harness
# ---------------------------------------------------------------------------

def run_experiments(table_rows=FULL_TABLE_ROWS, requests=FULL_REQUESTS,
                    metric=None, line=None, enforce=False):
    """Measure streaming and concurrency against one live server."""

    def emit(op: str, variant: str, rows: int, seconds: float,
             **extra: Any) -> None:
        if metric is not None:
            metric(op, seconds, variant=variant, rows=rows, **extra)

    database, handle = make_server(table_rows)
    try:
        with ServerClient.for_handle(handle) as client:
            statement = "range of t is BIG retrieve (t.A, t.B, t.C)"

            # -- time-to-first-row vs full drain ---------------------------
            first_page_seconds = float("inf")
            full_drain_seconds = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                page = client.open_cursor(statement, max_rows=PAGE_ROWS)
                first_page_seconds = min(
                    first_page_seconds, time.perf_counter() - start
                )
                assert len(page.rows) == PAGE_ROWS and not page.done
                client.close_cursor(page.cursor)

                start = time.perf_counter()
                drained = client.execute(statement)
                full_drain_seconds = min(
                    full_drain_seconds, time.perf_counter() - start
                )
                assert len(drained["rows"]) == table_rows
            ratio = first_page_seconds / full_drain_seconds
            emit("first_page", "cursor", table_rows, first_page_seconds,
                 page_rows=PAGE_ROWS, ratio=round(ratio, 4))
            emit("full_drain", "eager", table_rows, full_drain_seconds)
            if line is not None:
                line(
                    f"n={table_rows}: first cursor page ({PAGE_ROWS} rows) in "
                    f"{first_page_seconds * 1000:.1f}ms vs full drain "
                    f"{full_drain_seconds * 1000:.1f}ms ({ratio:.1%} of drain)"
                )
            if enforce:
                assert ratio < MAX_FIRST_PAGE_RATIO, (
                    f"first page took {ratio:.1%} of the full drain; the "
                    f"streaming budget is {MAX_FIRST_PAGE_RATIO:.0%}"
                )

        # -- serial vs concurrent clients, read-only -----------------------
        serial_seconds, serial_latencies = timed_clients(
            handle, 1, requests, table_rows
        )
        concurrent_seconds, concurrent_latencies = timed_clients(
            handle, CLIENTS, requests, table_rows
        )
        for variant, seconds, latencies, clients in (
            ("serial", serial_seconds, serial_latencies, 1),
            (f"concurrent{CLIENTS}", concurrent_seconds,
             concurrent_latencies, CLIENTS),
        ):
            emit(
                "read_throughput", variant, requests, seconds,
                clients=clients,
                requests_per_second=round(len(latencies) / seconds, 1),
                p50_ms=round(percentile(latencies, 0.50) * 1000, 3),
                p99_ms=round(percentile(latencies, 0.99) * 1000, 3),
            )
        speedup = serial_seconds / concurrent_seconds
        if line is not None:
            line(
                f"{requests} point reads: 1 client "
                f"{len(serial_latencies) / serial_seconds:.0f} req/s, "
                f"{CLIENTS} clients "
                f"{len(concurrent_latencies) / concurrent_seconds:.0f} req/s "
                f"({speedup:.2f}x; p99 "
                f"{percentile(concurrent_latencies, 0.99) * 1000:.1f}ms)"
            )
        if enforce:
            assert speedup >= 1.0, (
                f"{CLIENTS} concurrent clients ran {1 / speedup:.2f}x slower "
                f"than one serial client; overlap on the statement gate "
                f"should at least hide round-trip latency"
            )

        # -- mixed 10%-write workload (reported, not gated) -----------------
        mixed_seconds, mixed_latencies = timed_clients(
            handle, CLIENTS, requests, table_rows,
            write_fraction=WRITE_FRACTION,
        )
        emit(
            "mixed_throughput", f"concurrent{CLIENTS}", requests,
            mixed_seconds,
            clients=CLIENTS,
            write_fraction=WRITE_FRACTION,
            requests_per_second=round(len(mixed_latencies) / mixed_seconds, 1),
            p50_ms=round(percentile(mixed_latencies, 0.50) * 1000, 3),
            p99_ms=round(percentile(mixed_latencies, 0.99) * 1000, 3),
        )
        if line is not None:
            line(
                f"{requests} mixed requests ({WRITE_FRACTION:.0%} writes), "
                f"{CLIENTS} clients: "
                f"{len(mixed_latencies) / mixed_seconds:.0f} req/s, p99 "
                f"{percentile(mixed_latencies, 0.99) * 1000:.1f}ms"
            )
    finally:
        handle.stop()


# ---------------------------------------------------------------------------
# pytest entry point (quick smoke)
# ---------------------------------------------------------------------------

def test_server_load_quick(record):
    """Quick-mode sweep: records metrics, verifies page shapes.

    Timing budgets (first-page ratio, concurrency speedup) are only
    enforced on the standalone full sweep — CI shared runners are too
    noisy to gate on wall-clock ratios."""
    run_experiments(
        table_rows=QUICK_TABLE_ROWS, requests=QUICK_REQUESTS,
        metric=record.metric, line=record.line,
    )


# ---------------------------------------------------------------------------
# Standalone entry point (full sweep, writes benchmarks/results.json)
# ---------------------------------------------------------------------------

def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    table_rows = QUICK_TABLE_ROWS if quick else FULL_TABLE_ROWS
    requests = QUICK_REQUESTS if quick else FULL_REQUESTS

    here = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, here)
    import conftest  # the benchmark harness recorder/writer

    recorder = conftest.ExperimentRecorder("e18_server_load")
    run_experiments(
        table_rows=table_rows, requests=requests,
        metric=recorder.metric, line=recorder.line,
        enforce=not quick,
    )

    results_path = os.path.join(here, "results.json")
    conftest.write_results_json(results_path)

    metrics: List[Dict[str, Any]] = conftest._METRICS["e18_server_load"]
    print(f"{'op':<17} {'variant':<12} {'rows':>6} {'seconds':>9} "
          f"{'req/s':>8} {'p99 ms':>8}")
    for entry in metrics:
        rps = entry.get("requests_per_second")
        p99 = entry.get("p99_ms")
        print(
            f"{entry['op']:<17} {entry['variant']:<12} {entry['rows']:>6} "
            f"{entry['seconds']:>9.4f} "
            f"{rps if rps is not None else '—':>8} "
            f"{p99 if p99 is not None else '—':>8}"
        )
    print(f"\nwrote {results_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
