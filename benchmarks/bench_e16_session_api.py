"""E16 — the Session API: prepared-statement caching and QUEL DML batches.

Two claims of the unified-session PR are measured:

* **prepared cache hit vs re-parse/re-plan** — a repeated parameterized
  point lookup through ``session.prepare()`` executes with no lexing, no
  parsing, no analysis and no planning (the compiled plan probes the
  table's persistent index directly); the baseline runs the same text
  through per-call :func:`repro.quel.run_query`, paying the whole
  front-end pipeline every time.  The acceptance bar is ≥ 5× at 10k
  rows.
* **DML batch vs imperative loop** — one ``append … where`` /
  ``delete … where`` statement routes the whole matching set through the
  atomic bulk paths (``insert_many`` / ``delete_many``: constraints
  checked with one indexed pass); the baseline is the imperative Python
  loop of per-row ``Database.insert`` / ``Database.delete`` calls the
  DML statements replace, each paying the per-row key scan (insert) /
  referencing-table scan (FK-restricted delete).

Every measurement first asserts the two sides agree (information-wise
equal answers / final states), so the benchmark doubles as a
differential check.

Run styles:

* under pytest (quick sizes, used by CI as a smoke test):
  ``PYTHONPATH=src python -m pytest benchmarks/bench_e16_session_api.py -q``
* standalone (full sweep, writes results.json):
  ``PYTHONPATH=src python benchmarks/bench_e16_session_api.py``
  (pass ``--quick`` for the small sweep).
"""

from __future__ import annotations

import os
import random
import sys
import time
from typing import Callable, List, Tuple

import repro
from repro.constraints.keys import KeyConstraint
from repro.constraints.referential import ForeignKeyConstraint
from repro.core.xrelation import XRelation
from repro.quel.evaluator import run_query
from repro.storage.database import Database

FULL_SIZES = (1_000, 10_000)
QUICK_SIZES = (200, 500)
#: Executions per measurement of the repeated-lookup workload.
REPEATS = 50

LOOKUP_QUERY = 'range of b is BIG retrieve (b.B) where b.A = $a'


# ---------------------------------------------------------------------------
# Workload builders
# ---------------------------------------------------------------------------

def lookup_database(size: int, seed: int) -> Database:
    """BIG(A, B): ~2 rows per A value, indexed on A."""
    rng = random.Random(seed)
    database = Database("e16-lookup")
    big = database.create_table("BIG", ["A", "B"])
    big.insert_many([(rng.randrange(max(size // 2, 2)), i) for i in range(size)])
    big.create_index(["A"], name="big_a")
    return database


def dml_database(size: int, seed: int) -> Database:
    """SRC(A, B) feeding a *keyed* DST: what the DML statements replace
    is constraint-checked imperative mutation, so DST carries a key on B
    (per-row inserts pay the key scan; the batch path indexes once)."""
    rng = random.Random(seed)
    database = Database("e16-dml")
    src = database.create_table("SRC", ["A", "B"])
    src.insert_many([(rng.randrange(10), i) for i in range(size)])
    database.create_table("DST", ["A", "B"], constraints=[KeyConstraint(["B"])])
    return database


def add_referencing_table(database: Database) -> None:
    """REF rows reference every DST row that survives ``d.A < 3`` — the
    delete workload then runs under FK-restrict semantics, where the
    imperative loop re-scans REF per deleted row."""
    survivors = [row["B"] for row in database["DST"].tuples() if row["A"] >= 3]
    ref = database.create_table("REF", ["B"])
    ref.insert_many([(b,) for b in survivors])
    database.add_foreign_key("REF", ForeignKeyConstraint(["B"], "DST", ["B"]))


# ---------------------------------------------------------------------------
# Measurement harness
# ---------------------------------------------------------------------------

def _time(fn: Callable[[], object], repeat: int = 3) -> Tuple[float, object]:
    """Wall time of *fn* — best of *repeat* runs."""
    best = float("inf")
    value = None
    for _ in range(repeat):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_experiments(sizes=FULL_SIZES, metric=None, line=None, enforce=False):
    """Measure both workloads at every size, asserting agreement.

    With *enforce* (the standalone full sweep) the ≥ 5× prepared-vs-text
    acceptance bar is asserted at the largest size.
    """

    def emit(op, variant, rows, seconds, **extra):
        if metric is not None:
            metric(op, seconds, variant=variant, rows=rows, **extra)

    speedups = {}
    for size in sizes:
        # -- (a) prepared cache hit vs per-call run_query ---------------------
        database = lookup_database(size, seed=size)
        session = repro.connect(database)
        prepared = session.prepare(LOOKUP_QUERY)
        rng = random.Random(size + 1)
        keys = [rng.randrange(max(size // 2, 2)) for _ in range(REPEATS)]

        # Answers agree between the prepared fast path and the text path.
        probe = {"a": keys[0]}
        assert (
            prepared.execute(probe).to_relation()
            == run_query(LOOKUP_QUERY, database, params=probe).answer
            == run_query(LOOKUP_QUERY, database, params=probe, strategy="tuple").answer
        )
        # The compiled plan really does probe the persistent index, once.
        assert "index select" in prepared.explain(probe)
        compile_count = prepared.compile_count

        def repeat_prepared():
            for k in keys:
                prepared.execute({"a": k})

        def repeat_text():
            for k in keys:
                run_query(LOOKUP_QUERY, database, params={"a": k})

        engine_seconds, _ = _time(repeat_prepared)
        seed_seconds, _ = _time(repeat_text)
        assert prepared.compile_count == compile_count, "unexpected re-plan"
        speedup = round(seed_seconds / engine_seconds, 2)
        speedups[("prepared_lookup", size)] = speedup
        emit("prepared_lookup_repeated", "seed", size, seed_seconds, repeats=REPEATS)
        emit("prepared_lookup_repeated", "engine", size, engine_seconds,
             repeats=REPEATS, speedup=speedup)

        # -- (b) one DML statement vs the imperative loop ---------------------
        # APPEND-from-query into a keyed table: one statement, one
        # indexed constraint pass — the loop re-scans DST per insert.
        statement_db = dml_database(size, seed=size + 2)
        loop_db = dml_database(size, seed=size + 2)
        statement_session = repro.connect(statement_db)

        def append_statement():
            statement_db.table("DST").truncate()
            return statement_session.execute(
                'range of s is SRC append to DST (A = s.A, B = s.B) where s.A < 5'
            ).rows_affected

        def append_loop():
            loop_db.table("DST").truncate()
            count = 0
            for row in list(loop_db["SRC"].tuples()):
                if not row["A"] < 5:
                    continue
                loop_db.insert("DST", row)
                count += 1
            return count

        engine_seconds, _ = _time(append_statement, repeat=1)
        seed_seconds, _ = _time(append_loop, repeat=1)
        assert XRelation(statement_db["DST"]) == XRelation(loop_db["DST"])
        emit("append_batch", "seed", size, seed_seconds)
        emit("append_batch", "engine", size, engine_seconds,
             speedup=round(seed_seconds / engine_seconds, 2))

        # DELETE under FK-restrict: one statement indexes the referencing
        # table once — the loop re-scans it per deleted row.
        add_referencing_table(statement_db)
        add_referencing_table(loop_db)

        def delete_statement():
            return statement_session.execute(
                'range of d is DST delete d where d.A < 3'
            ).rows_affected

        def delete_loop():
            doomed = [r for r in loop_db["DST"].tuples() if r["A"] < 3]
            count = 0
            for row in doomed:
                count += loop_db.delete("DST", row)
            return count

        engine_seconds, _ = _time(delete_statement, repeat=1)
        seed_seconds, _ = _time(delete_loop, repeat=1)
        assert XRelation(statement_db["DST"]) == XRelation(loop_db["DST"])
        emit("delete_batch", "seed", size, seed_seconds)
        emit("delete_batch", "engine", size, engine_seconds,
             speedup=round(seed_seconds / engine_seconds, 2))

        if line is not None:
            line(f"n={size}: prepared/text and statement/loop answers agree "
                 f"(prepared lookup speedup {speedup}x)")

    if enforce:
        largest = max(sizes)
        achieved = speedups[("prepared_lookup", largest)]
        assert achieved >= 5.0, (
            f"prepared-statement speedup {achieved}x at n={largest} "
            f"is below the 5x acceptance bar"
        )


# ---------------------------------------------------------------------------
# pytest entry point (quick smoke + agreement assertions)
# ---------------------------------------------------------------------------

def test_session_api_vs_baselines_quick(record):
    """Quick-mode sweep: asserts agreement, records metrics."""
    run_experiments(sizes=QUICK_SIZES, metric=record.metric, line=record.line)


# ---------------------------------------------------------------------------
# Standalone entry point (full sweep, writes benchmarks/results.json)
# ---------------------------------------------------------------------------

def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    sizes = QUICK_SIZES if quick else FULL_SIZES

    here = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, here)
    import conftest  # the benchmark harness recorder/writer

    recorder = conftest.ExperimentRecorder("e16_session_api")
    run_experiments(
        sizes=sizes, metric=recorder.metric, line=recorder.line,
        enforce=not quick,
    )

    results_path = os.path.join(here, "results.json")
    conftest.write_results_json(results_path)

    metrics = conftest._METRICS["e16_session_api"]
    by_key = {(m["op"], m["variant"], m["rows"]): m for m in metrics}
    print(f"{'op':<26} {'rows':>6} {'seed s':>10} {'engine s':>10} {'speedup':>8}")
    for op in ("prepared_lookup_repeated", "append_batch", "delete_batch"):
        for size in sizes:
            seed = by_key.get((op, "seed", size))
            engine = by_key.get((op, "engine", size))
            if seed and engine:
                print(
                    f"{op:<26} {size:>6} {seed['seconds']:>10.4f} "
                    f"{engine['seconds']:>10.4f} "
                    f"{seed['seconds'] / engine['seconds']:>7.1f}x"
                )
    print(f"\nwrote {results_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
