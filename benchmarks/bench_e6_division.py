"""E6 — Display (6.6): division with nulls, three ways.

Regenerates the paper's comparison:

* Codd TRUE division  (query Q1) → ∅
* Codd MAYBE division (query Q2) → {s1, s2, s3}
* Zaniolo division    (query Q3) → {s1, s2}

and the agreement between the algebraic (6.2) and image-set (6.5)
formulations of the ni division.  Timed: all three divisions (plus the
ablation between the two ni formulations) on growing synthetic
parts-suppliers relations.
"""

import pytest

from repro import XRelation, divide, divide_by_images, project, select_constant
from repro.codd import codd_project, divide_maybe, divide_true, select_true
from repro.datagen import parts_suppliers_relation


def _divisors(ps):
    x = XRelation(ps)
    ours = project(select_constant(x, "S#", "=", "s2"), ["P#"])
    codd = codd_project(select_true(ps, "S#", "=", "s2"), ["P#"])
    return x, ours, codd


class TestPaperRows:
    def test_three_way_comparison(self, ps, record, benchmark):
        benchmark.group = "E6 paper rows"
        x, ours_divisor, codd_divisor = _divisors(ps)
        a1 = {t["S#"] for t in divide_true(ps, codd_divisor, ["S#"]).tuples()}
        a2 = {t["S#"] for t in divide_maybe(ps, codd_divisor, ["S#"]).tuples()}
        a3_result = benchmark(lambda: divide(x, ours_divisor, ["S#"]))
        a3 = {t["S#"] for t in a3_result.rows()}
        record.table(
            "Q: suppliers supplying every part supplied by s2",
            [
                f"A1 Codd TRUE  division: {sorted(a1) or '∅'}   (paper: ∅)",
                f"A2 Codd MAYBE division: {sorted(a2)}   (paper: ['s1', 's2', 's3'])",
                f"A3 Zaniolo    division: {sorted(a3)}   (paper: ['s1', 's2'])",
            ],
        )
        assert a1 == set()
        assert a2 == {"s1", "s2", "s3"}
        assert a3 == {"s1", "s2"}

    def test_formulations_agree(self, ps, record, benchmark):
        benchmark.group = "E6 paper rows"
        x, ours_divisor, _ = _divisors(ps)
        by_algebra = divide(x, ours_divisor, ["S#"])
        by_images = benchmark(lambda: divide_by_images(x, ours_divisor, ["S#"]))
        record.line("algebraic (6.2) and image-set (6.5) divisions agree: "
                    f"{by_algebra == by_images}")
        assert by_algebra == by_images


class TestCost:
    @pytest.mark.parametrize("rows", [50, 150, 400])
    def test_zaniolo_division_cost(self, benchmark, rows):
        ps = parts_suppliers_relation(8, 10, rows, null_rate=0.2, seed=rows)
        x = XRelation(ps)
        divisor = project(select_constant(x, "S#", "=", "s1"), ["P#"])
        benchmark.group = "E6 division cost"
        benchmark.name = f"zaniolo-(6.2) rows={rows}"
        benchmark(lambda: divide(x, divisor, ["S#"]))

    @pytest.mark.parametrize("rows", [50, 150, 400])
    def test_image_division_cost(self, benchmark, rows):
        """Ablation: the image-set formulation recomputes an image per candidate."""
        ps = parts_suppliers_relation(8, 10, rows, null_rate=0.2, seed=rows)
        x = XRelation(ps)
        divisor = project(select_constant(x, "S#", "=", "s1"), ["P#"])
        benchmark.group = "E6 division cost"
        benchmark.name = f"zaniolo-(6.5) rows={rows}"
        benchmark(lambda: divide_by_images(x, divisor, ["S#"]))

    @pytest.mark.parametrize("rows", [50, 150, 400])
    def test_codd_divisions_cost(self, benchmark, rows):
        ps = parts_suppliers_relation(8, 10, rows, null_rate=0.2, seed=rows)
        divisor = codd_project(select_true(ps, "S#", "=", "s1"), ["P#"])
        benchmark.group = "E6 division cost"
        benchmark.name = f"codd-true+maybe rows={rows}"
        benchmark(lambda: (divide_true(ps, divisor, ["S#"]), divide_maybe(ps, divisor, ["S#"])))
