"""E4 — Figure 1 (query Q_A): the tautology query and its evaluation cost.

Paper claims reproduced:

* under the ni interpretation BROWN (null TEL#) is not in the lower bound,
  and no tautology detection is needed;
* under the "unknown" interpretation the ≥-variant of the query makes
  BROWN a certain answer, which requires tautology analysis (or full
  possible-worlds enumeration) to discover.

Timed: ni lower-bound evaluation vs unknown-interpretation evaluation
(with tautology detection) vs exact possible-worlds evaluation, on the
paper database and on growing synthetic EMP relations.
"""

import pytest

from repro.core.query import evaluate_lower_bound
from repro.datagen import FIGURE_1_QUERY, employee_database, scaled_employee_database
from repro.quel import compile_query, run_query
from repro.tautology import TautologyDetector, evaluate_unknown_lower_bound
from repro.worlds import WorldSpaceTooLarge, evaluate_bounds


WEAK_VARIANT = FIGURE_1_QUERY.replace("e.TEL# > 2634000", "e.TEL# >= 2634000")


class TestPaperRows:
    def test_ni_lower_bound(self, emp_db, record, benchmark):
        benchmark.group = "E4 paper rows"
        result = benchmark(lambda: run_query(FIGURE_1_QUERY, emp_db))
        names = sorted({t["e_NAME"] for t in result.rows})
        record.line(f"||Q_A||* under ni interpretation: {names} (BROWN excluded, paper §5)")
        assert "BROWN" not in names

    def test_unknown_interpretation_needs_tautology_analysis(self, emp_db, record, benchmark):
        benchmark.group = "E4 paper rows"
        analyzed = compile_query(WEAK_VARIANT, emp_db)
        detector = TautologyDetector()
        result = benchmark(lambda: evaluate_unknown_lower_bound(analyzed.query, detector))
        names = sorted({t["e_NAME"] for t in result.rows()})
        record.line(f"||Q_A||* under unknown interpretation (≥ variant): {names} (BROWN included)")
        assert "BROWN" in names

    def test_possible_worlds_oracle(self, emp_db, record, benchmark):
        benchmark.group = "E4 paper rows"
        analyzed = compile_query(WEAK_VARIANT, emp_db)
        bounds = benchmark(lambda: evaluate_bounds(
            analyzed.query, domains={"TEL#": [2633999, 2634000, 2634001]}
        ))
        record.line(
            f"possible-worlds certain answers: {sorted(t['e_NAME'] for t in bounds.certain)} "
            f"over {bounds.world_count} worlds"
        )
        assert any(t["e_NAME"] == "BROWN" for t in bounds.certain)


class TestCost:
    @pytest.mark.parametrize("size", [20, 60, 120])
    def test_ni_evaluation_scales_with_rows(self, benchmark, size):
        db = scaled_employee_database(size, null_rate=0.4, seed=1)
        analyzed = compile_query(FIGURE_1_QUERY, db)
        benchmark.group = "E4 Q_A cost"
        benchmark.name = f"ni-lower-bound rows={size}"
        benchmark(lambda: evaluate_lower_bound(analyzed.query))

    @pytest.mark.parametrize("size", [20, 60, 120])
    def test_unknown_evaluation_pays_for_tautology_checks(self, benchmark, size):
        db = scaled_employee_database(size, null_rate=0.4, seed=1)
        analyzed = compile_query(WEAK_VARIANT, db)
        detector = TautologyDetector()
        benchmark.group = "E4 Q_A cost"
        benchmark.name = f"unknown-interpretation rows={size}"
        benchmark(lambda: evaluate_unknown_lower_bound(analyzed.query, detector))

    @pytest.mark.parametrize("size", [6, 9, 12])
    def test_worlds_evaluation_explodes_with_nulls(self, benchmark, size):
        db = scaled_employee_database(size, null_rate=0.4, seed=1)
        analyzed = compile_query(FIGURE_1_QUERY, db)
        benchmark.group = "E4 Q_A cost"
        benchmark.name = f"possible-worlds rows={size}"

        def run():
            try:
                return evaluate_bounds(
                    analyzed.query,
                    domains={"TEL#": [2633999, 2634001], "MGR#": [1, 2]},
                    cap=2_000_000,
                )
            except WorldSpaceTooLarge as blowup:
                return blowup

        benchmark(run)
