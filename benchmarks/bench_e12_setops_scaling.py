"""E12 — The efficiency remarks after (4.6)–(4.8), and the minimal-form ablation.

The paper notes that the naive implementations cost O(|R1| + |R2|) for
union and O(|R1| · |R2|) for x-intersection/difference, and points at
"combinatorial hashing" for better behaviour.  This benchmark measures:

* union / x-intersection / difference as the operand sizes grow,
* naive versus signature-hashed reduction to minimal form (the design
  ablation called out in DESIGN.md),
* eager versus lazy minimisation of union results (the second ablation).
"""

import pytest

from repro.core.minimal import reduce_rows_hashed, reduce_rows_naive
from repro.core.setops import difference, union, x_intersection
from repro.datagen import random_partial_relation


def _pair(rows, seed=0, null_rate=0.3, domain=12):
    left = random_partial_relation(["A", "B", "C"], domain, rows, null_rate, seed=seed, name="L")
    right = random_partial_relation(["A", "B", "C"], domain, rows, null_rate, seed=seed + 1, name="R")
    return left, right


class TestPaperRows:
    def test_reduction_strategies_agree(self, record, benchmark):
        benchmark.group = "E12 paper rows"
        left, _ = _pair(300, seed=3)
        rows = list(left.tuples())
        hashed = benchmark(lambda: set(reduce_rows_hashed(rows)))
        naive = set(reduce_rows_naive(rows))
        record.line(
            f"minimal form of a 300-row relation: naive={len(naive)} rows, "
            f"hashed={len(hashed)} rows, agree={naive == hashed}"
        )
        assert naive == hashed

    def test_union_scope_is_union_of_scopes(self, record, benchmark):
        benchmark.group = "E12 paper rows"
        left = random_partial_relation(["A", "B"], 6, 40, 0.3, seed=1, name="L")
        right = random_partial_relation(["B", "C"], 6, 40, 0.3, seed=2, name="R")
        result = benchmark(lambda: union(left, right))
        record.line(f"scope(L ∪ R) = {result.scope()} (union of operand scopes, §4)")
        assert set(result.scope()) <= {"A", "B", "C"}


class TestSetOperationScaling:
    @pytest.mark.parametrize("rows", [100, 400, 1200])
    def test_union_cost(self, benchmark, rows):
        left, right = _pair(rows, seed=rows)
        benchmark.group = "E12 set ops"
        benchmark.name = f"union rows={rows}"
        benchmark(lambda: union(left, right))

    @pytest.mark.parametrize("rows", [50, 120, 300])
    def test_x_intersection_cost(self, benchmark, rows):
        left, right = _pair(rows, seed=rows)
        benchmark.group = "E12 set ops"
        benchmark.name = f"x-intersection rows={rows}"
        benchmark(lambda: x_intersection(left, right))

    @pytest.mark.parametrize("rows", [100, 300, 900])
    def test_difference_cost(self, benchmark, rows):
        left, right = _pair(rows, seed=rows)
        benchmark.group = "E12 set ops"
        benchmark.name = f"difference rows={rows}"
        benchmark(lambda: difference(left, right))


class TestMinimalFormAblation:
    @pytest.mark.parametrize("rows", [100, 400, 1200])
    def test_naive_reduction(self, benchmark, rows):
        relation = random_partial_relation(["A", "B", "C"], 10, rows, 0.4, seed=rows, name="R")
        rows_list = list(relation.tuples())
        benchmark.group = "E12 minimal form"
        benchmark.name = f"naive rows={rows}"
        benchmark(lambda: reduce_rows_naive(rows_list))

    @pytest.mark.parametrize("rows", [100, 400, 1200])
    def test_hashed_reduction(self, benchmark, rows):
        relation = random_partial_relation(["A", "B", "C"], 10, rows, 0.4, seed=rows, name="R")
        rows_list = list(relation.tuples())
        benchmark.group = "E12 minimal form"
        benchmark.name = f"hashed rows={rows}"
        benchmark(lambda: reduce_rows_hashed(rows_list))

    @pytest.mark.parametrize("rows", [200, 800])
    def test_union_eager_minimisation(self, benchmark, rows):
        left, right = _pair(rows, seed=rows + 7)
        benchmark.group = "E12 minimal form"
        benchmark.name = f"union-eager-minimise rows={rows}"
        benchmark(lambda: union(left, right, minimize=True))

    @pytest.mark.parametrize("rows", [200, 800])
    def test_union_lazy_minimisation(self, benchmark, rows):
        left, right = _pair(rows, seed=rows + 7)
        benchmark.group = "E12 minimal form"
        benchmark.name = f"union-lazy rows={rows}"
        benchmark(lambda: union(left, right, minimize=False))
