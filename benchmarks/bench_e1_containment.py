"""E1 — Displays (1.1)/(1.2): set containment under Codd vs x-relations.

Paper claims reproduced:

* ``PS'' ⊇ PS'`` evaluates to MAYBE under the null substitution principle;
* ``PS' = PS'`` evaluates to MAYBE;
* ``PS' ∪ PS'' ⊇ PS'`` and ``PS' ∩ PS'' ⊆ PS'`` do not evaluate to TRUE;
* for x-relations all four judgements are plain facts (True).

Timed: the substitution-principle containment (exponential in the number
of nulls) versus the x-relation subsumption test, on growing synthetic
containment pairs.
"""

import pytest

from repro import XRelation
from repro.codd import (
    CODD_TRUE,
    MAYBE,
    containment_truth,
    equality_truth,
    intersection_contained_truth,
    union_contains_truth,
)
from repro.datagen import containment_pair


class TestPaperRows:
    def test_codd_judgements(self, ps1, ps2, record, benchmark):
        benchmark.group = "E1 paper rows"
        containment = benchmark(lambda: containment_truth(ps2, ps1))
        self_equality = equality_truth(ps1, ps1)
        union_claim = union_contains_truth(ps1, ps2, ps1)
        intersection_claim = intersection_contained_truth(ps1, ps2, ps1)
        record.table(
            "Codd (null substitution principle):",
            [
                f"PS'' ⊇ PS'          → {containment}   (paper: MAYBE)",
                f"PS'  =  PS'         → {self_equality}   (paper: MAYBE)",
                f"PS' ∪ PS'' ⊇ PS'    → {union_claim}   (paper: not TRUE)",
                f"PS' ∩ PS'' ⊆ PS'    → {intersection_claim}   (paper: not TRUE)",
            ],
        )
        assert containment == MAYBE
        assert self_equality == MAYBE
        assert union_claim != CODD_TRUE

    def test_xrelation_judgements(self, ps1, ps2, record, benchmark):
        benchmark.group = "E1 paper rows"
        x1, x2 = XRelation(ps1), XRelation(ps2)
        benchmark(lambda: x2 >= x1)
        record.table(
            "x-relations (this paper):",
            [
                f"PS'' ⊒ PS'          → {x2 >= x1}   (paper: holds)",
                f"PS'  =  PS'         → {x1 == x1}   (paper: holds)",
                f"PS' ∪ PS'' ⊒ PS'    → {(x1 | x2) >= x1}   (paper: holds)",
                f"PS' ∩̂ PS'' ⊑ PS'    → {(x1 & x2) <= x1}   (paper: holds)",
            ],
        )
        assert x2 >= x1 and x1 == x1
        assert (x1 | x2) >= x1 and (x1 & x2) <= x1


class TestCost:
    @pytest.mark.parametrize("base_rows", [4, 6, 8])
    def test_substitution_containment_cost(self, benchmark, base_rows):
        smaller, larger = containment_pair(base_rows, 3, domain_size=3, null_rate=0.3, seed=base_rows)
        benchmark.group = "E1 containment"
        benchmark.name = f"codd-substitution rows={base_rows}"
        try:
            benchmark(lambda: containment_truth(larger, smaller, domains={"A": ["a0", "a1"], "B": ["b0", "b1"]}))
        except ValueError:
            pytest.skip("substitution space above the cap — the blow-up itself is the result")

    @pytest.mark.parametrize("base_rows", [4, 8, 12, 64, 256])
    def test_xrelation_subsumption_cost(self, benchmark, base_rows):
        smaller, larger = containment_pair(base_rows, 3, domain_size=3, null_rate=0.3, seed=base_rows)
        x_small, x_large = XRelation(smaller), XRelation(larger)
        benchmark.group = "E1 containment"
        benchmark.name = f"xrelation-subsumption rows={base_rows}"
        result = benchmark(lambda: x_large >= x_small)
        assert result is True
