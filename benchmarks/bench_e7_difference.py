"""E7 — Query Q4: difference carries a "for sure" universal flavour.

Regenerates the paper's answer ({p2}) and measures the generalised
difference against the classical set difference on total relations (where
the two coincide), plus its scaling on synthetic data.
"""

import pytest

from repro import Relation, XRelation, project, select_constant
from repro.codd import codd_difference
from repro.core.setops import difference
from repro.datagen import parts_suppliers_relation


class TestPaperRows:
    def test_q4(self, ps, record, benchmark):
        benchmark.group = "E7 paper rows"
        x = XRelation(ps)
        s1_parts = project(select_constant(x, "S#", "=", "s1"), ["P#"])
        s2_parts = project(select_constant(x, "S#", "=", "s2"), ["P#"])
        result = benchmark(lambda: s1_parts - s2_parts)
        answer = sorted(t["P#"] for t in result.rows())
        record.line(f"Q4 'parts supplied by s1 but not by s2' = {answer}   (paper: ['p2'])")
        assert answer == ["p2"]

    def test_difference_reduces_to_classical_on_total_relations(self, record, benchmark):
        benchmark.group = "E7 paper rows"
        a = Relation.from_rows(["P#"], [("p1",), ("p2",), ("p3",)], name="A")
        b = Relation.from_rows(["P#"], [("p1",)], name="B")
        generalized = benchmark(lambda: difference(a, b))
        classical = codd_difference(a, b)
        agree = XRelation(classical) == XRelation(generalized)
        record.line(f"generalised difference == classical difference on total relations: {agree}")
        assert agree


class TestCost:
    @pytest.mark.parametrize("rows", [100, 300, 900])
    def test_difference_cost(self, benchmark, rows):
        left = parts_suppliers_relation(10, 12, rows, null_rate=0.25, seed=rows)
        right = parts_suppliers_relation(10, 12, rows // 2, null_rate=0.25, seed=rows + 1)
        benchmark.group = "E7 difference cost"
        benchmark.name = f"generalised-difference rows={rows}"
        benchmark(lambda: difference(left, right))

    @pytest.mark.parametrize("rows", [100, 400, 1600])
    def test_classical_difference_cost(self, benchmark, rows):
        left = parts_suppliers_relation(10, 12, rows, null_rate=0.0, seed=rows)
        right = parts_suppliers_relation(10, 12, rows // 2, null_rate=0.0, seed=rows + 1)
        benchmark.group = "E7 difference cost"
        benchmark.name = f"classical-difference rows={rows}"
        benchmark(lambda: codd_difference(left, right))
