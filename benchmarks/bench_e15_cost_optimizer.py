"""E15 — the cost-based optimizer against the previous (PR 2) planner.

The statistics PR claims two speedups, both measured here against the
prior planner reproduced exactly by ``Plan(query, cost_based=False,
use_indexes=False)`` (syntactic join order, constant pushdown only,
residual last, hash buckets rebuilt per query):

* **join reordering** — on a 3-range chain query whose last-declared
  range is highly selective, the greedy cost order starts from the
  selective range and walks the chain outward, so the intermediate
  results stay near the final answer's size; the syntactic order builds
  the large BIG1 ⋈ BIG2 intermediate first;
* **persistent-index reuse** — on a repeated-query workload joining a
  small filtered range against a large indexed table, the optimizer
  emits an index-nested-loop join probing the table's live
  :class:`~repro.storage.index.HashIndex`; the baseline renames and
  re-buckets all of the large table on every query.

Every measurement first asserts that the optimized and baseline plans
produce information-wise identical answers (``XRelation`` equality), so
the benchmark doubles as a differential check.

Run styles:

* under pytest (quick sizes, used by CI as a smoke test):
  ``PYTHONPATH=src python -m pytest benchmarks/bench_e15_cost_optimizer.py -q``
* standalone (full sweep, writes results.json):
  ``PYTHONPATH=src python benchmarks/bench_e15_cost_optimizer.py``
  (pass ``--quick`` for the small sweep).
"""

from __future__ import annotations

import os
import random
import sys
import time
from typing import Callable, List, Tuple

from repro.quel.evaluator import compile_query
from repro.quel.planner import Plan
from repro.storage.database import Database

FULL_SIZES = (1_000, 10_000)
QUICK_SIZES = (200, 500)
#: Queries per measurement of the repeated-query (index-reuse) workload.
REPEATS = 5

CHAIN_QUERY = (
    "range of b1 is BIG1 range of b2 is BIG2 range of sel is SEL "
    "retrieve (b1.X, sel.C) "
    "where b1.A = b2.A and b2.B = sel.B and sel.C = 1"
)

INDEX_QUERY = (
    "range of s is SMALL range of b is BIG "
    "retrieve (s.K, b.B) where s.A = b.A"
)


# ---------------------------------------------------------------------------
# Workload builders
# ---------------------------------------------------------------------------

def chain_database(size: int, seed: int) -> Database:
    """BIG1 –A– BIG2 –B– SEL: the selective filter sits on the last range.

    ``A`` has ~size/10 distinct values, ``B`` ~size/100, and ``SEL.C``
    ranges over ~size values so ``sel.C = 1`` keeps a handful of rows —
    the shape where join order dominates the cost.
    """
    rng = random.Random(seed)
    a_domain = max(size // 10, 2)
    b_domain = max(size // 100, 2)
    c_domain = max(size, 2)
    database = Database("e15-chain")
    big1 = database.create_table("BIG1", ["A", "X"])
    big2 = database.create_table("BIG2", ["A", "B"])
    sel = database.create_table("SEL", ["B", "C"])
    big1.insert_many([(rng.randrange(a_domain), i) for i in range(size)])
    big2.insert_many([(rng.randrange(a_domain), rng.randrange(b_domain)) for _ in range(size)])
    sel.insert_many([(rng.randrange(b_domain), rng.randrange(c_domain)) for _ in range(size)])
    # Guarantee the filter matches something at every size.
    sel.insert((0, 1))
    return database


def indexed_database(size: int, seed: int) -> Database:
    """A small probe table against a big table indexed on the join key."""
    rng = random.Random(seed)
    a_domain = max(size // 2, 2)
    database = Database("e15-index")
    small = database.create_table("SMALL", ["K", "A"])
    big = database.create_table("BIG", ["A", "B"])
    small.insert_many([(i, rng.randrange(a_domain)) for i in range(64)])
    big.insert_many([(rng.randrange(a_domain), i) for i in range(size)])
    big.create_index(["A"], name="big_a")
    return database


# ---------------------------------------------------------------------------
# Measurement harness
# ---------------------------------------------------------------------------

def _time(fn: Callable[[], object], repeat: int = 3) -> Tuple[float, object]:
    """Wall time of *fn* — best of *repeat* runs."""
    best = float("inf")
    value = None
    for _ in range(repeat):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _baseline(query, database):
    return Plan(query, database, cost_based=False, use_indexes=False).execute()


def _optimized(query, database):
    return Plan(query, database).execute()


def run_experiments(sizes=FULL_SIZES, metric=None, line=None):
    """Measure both workloads at every size, asserting plan agreement."""

    def emit(op, variant, rows, seconds, **extra):
        if metric is not None:
            metric(op, seconds, variant=variant, rows=rows, **extra)

    for size in sizes:
        # -- (a) 3-range join reordering -------------------------------------
        database = chain_database(size, seed=size)
        query = compile_query(CHAIN_QUERY, database).query
        seed_seconds, seed_answer = _time(lambda: _baseline(query, database))
        engine_seconds, engine_answer = _time(lambda: _optimized(query, database))
        assert engine_answer == seed_answer
        emit("join_reorder_3way", "seed", size, seed_seconds)
        emit("join_reorder_3way", "engine", size, engine_seconds,
             speedup=round(seed_seconds / engine_seconds, 2))

        # The optimizer really did start from the selective range.
        plan = Plan(query, database)
        plan.execute()
        joins = [step for step in plan.steps if "join with" in step]
        assert "sel." in joins[0], plan.explain()

        # -- (b) repeated queries reusing a persistent index ------------------
        database = indexed_database(size, seed=size + 1)
        query = compile_query(INDEX_QUERY, database).query

        def repeat_baseline():
            answers = [_baseline(query, database) for _ in range(REPEATS)]
            return answers[-1]

        def repeat_optimized():
            answers = [_optimized(query, database) for _ in range(REPEATS)]
            return answers[-1]

        seed_seconds, seed_answer = _time(repeat_baseline)
        engine_seconds, engine_answer = _time(repeat_optimized)
        assert engine_answer == seed_answer
        emit("index_reuse_repeated", "seed", size, seed_seconds, repeats=REPEATS)
        emit("index_reuse_repeated", "engine", size, engine_seconds, repeats=REPEATS,
             speedup=round(seed_seconds / engine_seconds, 2))

        # The optimized plan probes the live index instead of re-bucketing.
        plan = Plan(query, database)
        plan.execute()
        assert any("index-nested-loop join" in step and "big_a" in step
                   for step in plan.steps), plan.explain()

        if line is not None:
            line(f"n={size}: optimized/baseline answers identical on both "
                 f"workloads (metrics in results.json)")


# ---------------------------------------------------------------------------
# pytest entry point (quick smoke + agreement assertions)
# ---------------------------------------------------------------------------

def test_optimizer_vs_baseline_quick(record):
    """Quick-mode sweep: asserts plan agreement, records metrics."""
    run_experiments(sizes=QUICK_SIZES, metric=record.metric, line=record.line)


# ---------------------------------------------------------------------------
# Standalone entry point (full sweep, writes benchmarks/results.json)
# ---------------------------------------------------------------------------

def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    sizes = QUICK_SIZES if quick else FULL_SIZES

    here = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, here)
    import conftest  # the benchmark harness recorder/writer

    recorder = conftest.ExperimentRecorder("e15_cost_optimizer")
    run_experiments(sizes=sizes, metric=recorder.metric, line=recorder.line)

    results_path = os.path.join(here, "results.json")
    conftest.write_results_json(results_path)

    metrics = conftest._METRICS["e15_cost_optimizer"]
    by_key = {(m["op"], m["variant"], m["rows"]): m for m in metrics}
    print(f"{'op':<22} {'rows':>6} {'seed s':>10} {'engine s':>10} {'speedup':>8}")
    for op in ("join_reorder_3way", "index_reuse_repeated"):
        for size in sizes:
            seed = by_key.get((op, "seed", size))
            engine = by_key.get((op, "engine", size))
            if seed and engine:
                print(
                    f"{op:<22} {size:>6} {seed['seconds']:>10.4f} "
                    f"{engine['seconds']:>10.4f} "
                    f"{seed['seconds'] / engine['seconds']:>7.1f}x"
                )
    print(f"\nwrote {results_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
