"""Diff two ``results.json`` runs and fail on performance regressions.

Usage::

    python benchmarks/compare.py BASELINE.json CURRENT.json \
        [--threshold 0.2] [--experiments e17_streaming_executor,e15_cost_optimizer]

``--experiments`` also accepts short ids: a name that matches no
experiment exactly selects every experiment it prefixes, so
``--experiments e13,e22`` tracks ``e13_wal_durability`` and
``e22_optimizer_v2`` without spelling the full ids.

Every structured metric is keyed by ``(experiment, op, variant, rows)``;
for each key present in *both* files the wall-time ratio
``current / baseline`` is computed, and any tracked metric slower by
more than the threshold (default 20%) makes the tool exit non-zero with
a per-metric report.  Keys present in only one file are reported but
never fail the run — a quick smoke writing small sizes cannot be judged
against a full sweep's sizes, and new experiments have no baseline yet.

The intended uses: locally, ``cp benchmarks/results.json /tmp/base.json``
before an optimisation, rerun the relevant benchmark, compare; in CI, a
self-comparison smoke plus back-to-back quick runs guard against
catastrophic (orders-of-magnitude) slowdowns without gating on noisy
shared-runner timings.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

MetricKey = Tuple[str, str, str, object]


def load_metrics(path: str) -> Dict[MetricKey, float]:
    """The wall-time seconds of every structured metric in a results file,
    keyed by (experiment, op, variant, rows).

    Only the ``experiments`` block participates; document-level metadata
    (the ``machine`` stamp — CPU count, interpreter, timestamp) is
    deliberately ignored, so two runs differing only in *when* or *where*
    they were measured diff clean.  Non-mapping entries under
    ``experiments`` are likewise skipped rather than crashing the diff.
    """
    with open(path) as handle:
        document = json.load(handle)
    experiments = document.get("experiments", {})
    metrics: Dict[MetricKey, float] = {}
    for experiment, entry in experiments.items():
        if not isinstance(entry, dict):
            continue
        for metric in entry.get("metrics", []):
            if "op" not in metric or "seconds" not in metric:
                continue
            key = (
                experiment,
                metric["op"],
                str(metric.get("variant", "")),
                metric.get("rows"),
            )
            metrics[key] = float(metric["seconds"])
    return metrics


def compare(
    baseline: Dict[MetricKey, float],
    current: Dict[MetricKey, float],
    threshold: float,
    experiments: Optional[List[str]] = None,
) -> Tuple[List[str], List[str]]:
    """Compare two metric maps; returns (report lines, regression lines).

    A regression is a shared key whose current wall time exceeds the
    baseline by more than *threshold* (0.2 = 20% slower).

    *experiments* entries match an experiment id exactly, or — when no
    id equals the entry — by prefix (``e22`` selects
    ``e22_optimizer_v2``), so the CLI accepts the short ids the bench
    modules print.
    """
    wanted = set(experiments) if experiments else None
    report: List[str] = []
    regressions: List[str] = []
    shared = sorted(set(baseline) & set(current))
    known = {experiment for experiment, _, _, _ in set(baseline) | set(current)}

    def tracked(experiment: str) -> bool:
        if wanted is None or experiment in wanted:
            return True
        return any(
            name not in known and experiment.startswith(name)
            for name in wanted
        )

    for key in shared:
        experiment, op, variant, rows = key
        if not tracked(experiment):
            continue
        old, new = baseline[key], current[key]
        ratio = (new / old) if old > 0 else float("inf")
        line = (
            f"{experiment} {op} [{variant}, rows={rows}]: "
            f"{old:.4f}s -> {new:.4f}s ({ratio:.2f}x)"
        )
        if ratio > 1.0 + threshold:
            regressions.append(line)
            report.append("REGRESSION  " + line)
        else:
            report.append("ok          " + line)
    only_baseline = set(baseline) - set(current)
    only_current = set(current) - set(baseline)
    if only_baseline:
        report.append(f"({len(only_baseline)} metric(s) only in the baseline run)")
    if only_current:
        report.append(f"({len(only_current)} metric(s) only in the current run)")
    if not shared:
        report.append("no overlapping metrics to compare")
    return report, regressions


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two benchmark results.json runs; fail on regressions."
    )
    parser.add_argument("baseline", help="results.json of the reference run")
    parser.add_argument("current", help="results.json of the run under test")
    parser.add_argument(
        "--threshold", type=float, default=0.2,
        help="allowed slowdown fraction before failing (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--experiments", default=None,
        help="comma-separated experiment ids to track (default: all shared)",
    )
    args = parser.parse_args(argv)
    experiments = (
        [name.strip() for name in args.experiments.split(",") if name.strip()]
        if args.experiments else None
    )
    report, regressions = compare(
        load_metrics(args.baseline), load_metrics(args.current),
        args.threshold, experiments,
    )
    for line in report:
        print(line)
    if regressions:
        print(
            f"\n{len(regressions)} metric(s) regressed beyond "
            f"{args.threshold:.0%}", file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
