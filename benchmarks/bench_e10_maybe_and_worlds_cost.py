"""E10 — The practicability claims of Sections 1 and 5, measured.

Two cost shapes are charted:

1. **Selectivity**: the size of TRUE/ni answers versus MAYBE answers as
   the null density grows (Codd's MAYBE queries return "little additional
   information" at high cost — here the blow-up in answer size).
2. **Evaluation cost**: the three-valued lower bound scales with the data,
   the exact possible-worlds evaluation scales with the number of worlds
   (exponential in the null count), and Codd's substitution-principle
   containment shows the same exponential shape.
"""

import pytest

from repro.codd import select_maybe, select_true
from repro.core.algebra import select_constant
from repro.core.query import AttributeRef, Comparison, Constant, Query, evaluate_lower_bound
from repro.datagen import employee_relation
from repro.worlds import CompletionSpace, evaluate_bounds


class TestPaperRows:
    def test_maybe_selectivity_blows_up_with_null_density(self, record, benchmark):
        benchmark.group = "E10 paper rows"
        rows = []
        for rate in (0.0, 0.2, 0.4, 0.6, 0.8):
            emp = employee_relation(80, null_rate=rate, seed=9)
            true_count = len(select_true(emp, "TEL#", ">", 2500000))
            maybe_count = len(select_maybe(emp, "TEL#", ">", 2500000))
            ni_count = len(select_constant(emp, "TEL#", ">", 2500000))
            rows.append(
                f"null-rate={rate:.1f}  TRUE={true_count:>3d}  ni={ni_count:>3d}  MAYBE={maybe_count:>3d}"
            )
            assert true_count == ni_count
        record.table("selectivity of TEL# > 2.5M on 80 synthetic employees:", rows)
        # The MAYBE answer must dominate the TRUE answer at high null density.
        emp = employee_relation(80, null_rate=0.8, seed=9)
        assert len(select_maybe(emp, "TEL#", ">", 2500000)) > len(select_true(emp, "TEL#", ">", 2500000))
        benchmark(lambda: select_maybe(emp, "TEL#", ">", 2500000))

    def test_world_count_grows_exponentially_with_nulls(self, record, benchmark):
        benchmark.group = "E10 paper rows"
        rows = []
        for size in (4, 8, 12, 16):
            emp = employee_relation(size, null_rate=0.4, seed=3)
            space = CompletionSpace([emp], domains={"TEL#": [1, 2], "MGR#": [1, 2]})
            rows.append(f"rows={size:>3d}  null-sites={space.null_site_count():>3d}  "
                        f"worlds={space.world_count():>8d}")
        record.table("possible-world counts (domain size 2 per null):", rows)
        emp = employee_relation(8, null_rate=0.4, seed=3)
        benchmark(lambda: CompletionSpace([emp], domains={"TEL#": [1, 2], "MGR#": [1, 2]}).world_count())


def _query(emp):
    where = Comparison(AttributeRef("e", "TEL#"), ">", Constant(2500000))
    return Query({"e": emp}, [AttributeRef("e", "NAME")], where)


class TestCost:
    @pytest.mark.parametrize("size", [25, 100, 400])
    def test_ni_selection_cost(self, benchmark, size):
        emp = employee_relation(size, null_rate=0.4, seed=1)
        benchmark.group = "E10 evaluation cost"
        benchmark.name = f"ni-selection rows={size}"
        benchmark(lambda: select_constant(emp, "TEL#", ">", 2500000))

    @pytest.mark.parametrize("size", [25, 100, 400])
    def test_true_plus_maybe_selection_cost(self, benchmark, size):
        emp = employee_relation(size, null_rate=0.4, seed=1)
        benchmark.group = "E10 evaluation cost"
        benchmark.name = f"codd-true+maybe rows={size}"
        benchmark(lambda: (select_true(emp, "TEL#", ">", 2500000),
                           select_maybe(emp, "TEL#", ">", 2500000)))

    @pytest.mark.parametrize("size", [25, 100, 400])
    def test_lower_bound_query_cost(self, benchmark, size):
        emp = employee_relation(size, null_rate=0.4, seed=1)
        query = _query(emp)
        benchmark.group = "E10 evaluation cost"
        benchmark.name = f"ni-query rows={size}"
        benchmark(lambda: evaluate_lower_bound(query))

    @pytest.mark.parametrize("size", [6, 8, 10])
    def test_worlds_query_cost(self, benchmark, size):
        emp = employee_relation(size, null_rate=0.4, seed=1)
        query = _query(emp)
        benchmark.group = "E10 evaluation cost"
        benchmark.name = f"possible-worlds-query rows={size}"
        benchmark(lambda: evaluate_bounds(
            query, domains={"TEL#": [2400000, 2600000], "MGR#": [1, 2]}, cap=5_000_000
        ))
