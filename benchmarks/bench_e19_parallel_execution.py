"""E19 — parallel partitioned execution against the serial pipeline.

The parallel-execution PR claims the win of shared-nothing partitioned
evaluation: ``Plan(query, db, parallelism=N)`` shards the start range
across N worker processes (co-partitioned on the first join key when the
plan joins, signature-partitioned for reduce-heavy single-range plans),
runs the full plan fragment per shard, and merges the locally reduced
shard frontiers — sound for any partitioning because local reduction
only removes dominated rows.

Two measured workloads per size:

* ``scan_filter_reduce`` — a single null-heavy table projected onto two
  nullable low-cardinality columns: almost all the work is dominance
  reduction of a large duplicate/dominated stream, the case signature
  partitioning distributes.  The merge frontier is tiny, so worker
  speedup survives the merge.
* ``three_way_join`` — the E17 selective R–S–T pipeline (pushed filter,
  fused residual): the first join is co-partitioned on its key, the
  remaining ranges broadcast.  Joins dominate, so this measures fragment
  CPU scaling rather than reduction scaling.

Every measurement asserts the parallel answer is information-wise
identical to the serial one (``XRelation`` equality), so the benchmark
doubles as a differential check.  The quick sweep additionally pins the
``parallelism=1`` knob to the serial cost (< 5% overhead + timer slack:
it compiles the *identical* operator tree).  The ≥ 2× four-worker gate
on the full sizes is asserted only in the standalone full sweep — it
needs real cores, which CI smoke runners and this container (1 CPU) do
not guarantee.

Run styles:

* under pytest (quick sizes, 2 workers, used by CI as a smoke test):
  ``PYTHONPATH=src python -m pytest benchmarks/bench_e19_parallel_execution.py -q``
* standalone (full sweep at 20k–100k, 4 workers, writes results.json,
  asserts the ≥ 2× gate at 100k):
  ``PYTHONPATH=src python benchmarks/bench_e19_parallel_execution.py``
  (pass ``--quick`` for the small sweep).
"""

from __future__ import annotations

import os
import random
import sys
import time
from typing import Callable, List, Tuple

from repro.quel.evaluator import compile_query
from repro.quel.planner import Plan
from repro.storage.database import Database

FULL_SIZES = (20_000, 100_000)
QUICK_SIZES = (400, 1_200)
#: Worker counts: CI smokes fork only a small pool; the full sweep uses
#: the acceptance-gate width.
FULL_WORKERS = 4
QUICK_WORKERS = 2
#: The ≥ 2× gate applies at the paper-scale size only.
GATE_SIZE = 100_000
NULL_RATE = 0.25

#: Reduce-heavy: the projection onto two nullable low-cardinality
#: columns collapses ~half the table into a small dominance frontier.
SCAN_QUERY_TEMPLATE = (
    "range of w is W retrieve (w.X, w.Y) where w.K < {limit}"
)

#: The E17 join pipeline: pushed filter on R, equijoin chain R–S–T, a
#: residual ``r.P <= s.Q`` the planner fuses into the first join's
#: probe loop.
JOIN_QUERY_TEMPLATE = (
    "range of r is R range of s is S range of t is T "
    "retrieve (r.A, s.Q, t.D) "
    "where r.B = s.B and s.C = t.C and r.A = 1 and r.P <= s.Q "
    "and t.D < {limit}"
)


def build_scan_database(size: int, seed: int) -> Database:
    """One wide null-heavy table W(K, X, Y): X/Y draw from a small
    domain with NULL_RATE nulls, so the projected stream is dominated by
    duplicates and the reduction — the parallelised work — is the cost."""
    rng = random.Random(seed)

    def payload(hi: int):
        return None if rng.random() < NULL_RATE else rng.randrange(hi)

    database = Database("e19_scan")
    w = database.create_table("W", ["K", "X", "Y"])
    w.insert_many([
        (i, payload(40), payload(40)) for i in range(size)
    ])
    return database


def build_join_database(size: int, seed: int) -> Database:
    """R –B– S –C– T, the E17 shape: selective pushed filter on R and a
    fused residual, so the fragment work is join probing."""
    rng = random.Random(seed)
    link_domain = max(size // 20, 2)

    def payload(hi: int):
        return None if rng.random() < NULL_RATE else rng.randrange(hi)

    database = Database("e19_join")
    r = database.create_table("R", ["A", "B", "P"])
    s = database.create_table("S", ["B", "C", "Q"])
    t = database.create_table("T", ["C", "D"])
    r.insert_many([
        (i % 7, rng.randrange(link_domain), payload(100)) for i in range(size)
    ])
    s.insert_many([
        (rng.randrange(link_domain), rng.randrange(link_domain), payload(100))
        for i in range(size)
    ])
    t.insert_many([(rng.randrange(link_domain), i) for i in range(size)])
    return database


WORKLOADS = (
    ("scan_filter_reduce", build_scan_database, SCAN_QUERY_TEMPLATE,
     lambda size: size // 2),
    ("three_way_join", build_join_database, JOIN_QUERY_TEMPLATE,
     lambda size: max(size // 100, 10)),
)


# ---------------------------------------------------------------------------
# Measurement harness
# ---------------------------------------------------------------------------

def _time(fn: Callable[[], object], repeat: int = 3) -> Tuple[float, object]:
    """Wall time of *fn* — best of *repeat* runs."""
    best = float("inf")
    value = None
    for _ in range(repeat):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_experiments(
    sizes=FULL_SIZES,
    workers: int = FULL_WORKERS,
    metric=None,
    line=None,
    assert_gate: bool = False,
    check_overhead: bool = False,
):
    """Measure both workloads at every size, asserting answer agreement.

    With *assert_gate* (the standalone full sweep) the ≥ 2× speedup at
    GATE_SIZE is asserted, not just recorded.  With *check_overhead*
    (the quick sweep) ``parallelism=1`` is timed against the serial plan
    and pinned to < 5% overhead plus a small absolute timer slack.
    """

    def emit(op, variant, rows, seconds, **extra):
        if metric is not None:
            metric(op, seconds, variant=variant, rows=rows, **extra)

    for size in sizes:
        for name, build, template, limit_for in WORKLOADS:
            database = build(size, seed=size)
            text = template.format(limit=limit_for(size))
            query = compile_query(text, database).query
            repeat = 3 if size < 50_000 else 2

            serial_seconds, serial_answer = _time(
                lambda: Plan(query, database).execute(), repeat
            )
            parallel_seconds, parallel_answer = _time(
                lambda: Plan(query, database, parallelism=workers).execute(),
                repeat,
            )
            assert parallel_answer == serial_answer
            speedup = round(serial_seconds / parallel_seconds, 2)

            # One instrumented run for the Exchange audit: the scheme,
            # the per-partition input counts and the skew they imply.
            plan = Plan(query, database, parallelism=workers)
            assert plan.execute() == serial_answer
            exchange = plan.pipeline.root.child
            assert "Exchange" in exchange.label
            analyzed = plan.pipeline.explain(analyze=True)
            assert "Exchange" in analyzed and "Merge" in analyzed

            emit(name, "serial", size, serial_seconds)
            emit(name, "parallel", size, parallel_seconds,
                 workers=workers, speedup=speedup,
                 skew=round(exchange.skew, 3) if exchange.skew else None)
            if assert_gate and size >= GATE_SIZE:
                assert speedup >= 2.0, (
                    f"{name}: {workers}-worker speedup {speedup}x at "
                    f"{size} rows is below the 2x gate"
                )

            if check_overhead:
                # parallelism=1 compiles the identical serial operator
                # tree — the knob must cost nothing but its dispatch.
                p1_seconds, p1_answer = _time(
                    lambda: Plan(query, database, parallelism=1).execute(), 5
                )
                base_seconds, _ = _time(
                    lambda: Plan(query, database).execute(), 5
                )
                assert p1_answer == serial_answer
                emit(name, "parallelism_1", size, p1_seconds,
                     overhead=round(p1_seconds / base_seconds - 1.0, 4))
                assert p1_seconds <= base_seconds * 1.05 + 0.005, (
                    f"{name}: parallelism=1 took {p1_seconds:.4f}s vs "
                    f"serial {base_seconds:.4f}s (> 5% overhead)"
                )

            if line is not None:
                line(
                    f"{name} n={size}: parallel({workers}) answer identical "
                    f"to serial; speedup {speedup}x, "
                    f"skew {exchange.skew:.2f} (metrics in results.json)"
                )


# ---------------------------------------------------------------------------
# pytest entry point (quick smoke + agreement/overhead assertions)
# ---------------------------------------------------------------------------

def test_parallel_vs_serial_quick(record):
    """Quick-mode sweep: asserts answer agreement and the parallelism=1
    no-overhead pin, records metrics; never gates on speedup (CI runners
    do not guarantee cores)."""
    run_experiments(
        sizes=QUICK_SIZES, workers=QUICK_WORKERS,
        metric=record.metric, line=record.line,
        check_overhead=True,
    )


# ---------------------------------------------------------------------------
# Standalone entry point (full sweep, writes benchmarks/results.json)
# ---------------------------------------------------------------------------

def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    sizes = QUICK_SIZES if quick else FULL_SIZES
    workers = QUICK_WORKERS if quick else FULL_WORKERS

    here = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, here)
    import conftest  # the benchmark harness recorder/writer

    recorder = conftest.ExperimentRecorder("e19_parallel_execution")
    run_experiments(
        sizes=sizes, workers=workers,
        metric=recorder.metric, line=recorder.line,
        assert_gate=not quick, check_overhead=quick,
    )

    results_path = os.path.join(here, "results.json")
    conftest.write_results_json(results_path)

    metrics = conftest._METRICS["e19_parallel_execution"]
    by_key = {(m["op"], m["variant"], m["rows"]): m for m in metrics}
    print(f"{'op':<22} {'rows':>7} {'serial s':>10} {'parallel s':>10} {'speedup':>8}")
    for op, _, _, _ in WORKLOADS:
        for size in sizes:
            serial = by_key.get((op, "serial", size))
            parallel = by_key.get((op, "parallel", size))
            if serial and parallel:
                print(
                    f"{op:<22} {size:>7} {serial['seconds']:>10.4f} "
                    f"{parallel['seconds']:>10.4f} "
                    f"{serial['seconds'] / parallel['seconds']:>7.1f}x"
                )
    print(f"\nwrote {results_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
